"""``repro-mc``: explore, replay, and summarize protocol model checking.

Three subcommands:

``explore``
    Exhaust the state space of a small config (or stop at the first
    violation).  Exit 0 on a clean exhaustive run, **1** when a violation
    was found (the minimized counterexample is printed and, with ``--out``,
    serialized for committing), 2 on usage errors / stale artifacts via the
    standard ``run_cli`` contract.  ``--mutate NAME`` checks a deliberately
    broken protocol shim; ``--jobs N`` fans frontier waves across the
    process pool; ``--require-exhaustive`` makes a budget stop an error.

``replay``
    Deterministically re-execute a ``counterexamples/*.json`` schedule.
    Against HEAD (the default) a committed counterexample must apply
    cleanly — exit 0.  With ``--mutate`` (or ``--recorded-mutation`` to use
    the mutation stored in the file) the bug is re-seeded and the replay
    must reproduce the violation; ``--expect-violation`` flips the exit
    code for exactly that CI usage (0 = violation reproduced).

``stats``
    One summary line per stats file (from ``explore --stats-out``) or
    counterexample file; directories are swept for ``*.json``.

Example session — find, commit, and guard a seeded bug::

    repro-mc explore --mutate lost_invalidation \\
        --out counterexamples/lost_invalidation.json   # exit 1, file written
    repro-mc replay counterexamples/lost_invalidation.json            # 0
    repro-mc replay counterexamples/lost_invalidation.json \\
        --recorded-mutation --expect-violation                        # 0
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cliutil import add_version, run_cli
from repro.errors import McError
from repro.mc.counterexample import (
    load_counterexample,
    replay_schedule,
    save_counterexample,
)
from repro.mc.explore import explore
from repro.mc.model import OPS, MCConfig

#: exit status when the checker found (or reproduced) a protocol violation —
#: a *result*, distinct from usage errors (2) per the run_cli contract.
EXIT_VIOLATION = 1


def _config_from_args(args) -> MCConfig:
    ops = tuple(args.ops.split(",")) if args.ops else OPS
    return MCConfig(
        nodes=args.nodes,
        blocks=args.blocks,
        epochs=args.epochs,
        ops_per_epoch=args.ops_per_epoch,
        ops=ops,
        faults=not args.no_faults,
        fault_budget=args.fault_budget,
        symmetry=args.symmetry,
        max_states=args.max_states,
        max_depth=args.max_depth,
    )


def _print_schedule(schedule, *, indent: str = "  ") -> None:
    for i, action in enumerate(schedule):
        print(f"{indent}{i:3d}  {action.label()}")


def _cmd_explore(args) -> int:
    config = _config_from_args(args)
    result = explore(
        config,
        mutate=args.mutate,
        jobs=args.jobs,
        minimize=not args.no_minimize,
        require_exhaustive=args.require_exhaustive,
    )
    if args.stats_out:
        Path(args.stats_out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.stats_out).write_text(
            json.dumps(result.as_dict(), indent=2, sort_keys=True) + "\n"
        )
    label = f"mutate={args.mutate}" if args.mutate else "HEAD"
    if result.violation is not None:
        coverage = "stopped at violation"
    elif result.exhausted:
        coverage = "exhausted"
    else:
        coverage = "budget-stopped"
    print(
        f"explore [{label}] {coverage}: {result.states} states, "
        f"{result.transitions} transitions, depth {result.depth}, "
        f"{result.elapsed:.2f}s ({result.states_per_sec:.0f} states/s, "
        f"jobs={result.jobs})"
    )
    if result.violation is None:
        print("no violations")
        return 0
    vio = result.violation
    print(f"VIOLATION [{vio.invariant}] {vio.message}")
    print(
        f"counterexample: {len(result.schedule)} actions "
        f"(minimized from {result.schedule_raw}):"
    )
    _print_schedule(result.schedule)
    if args.out:
        path = save_counterexample(
            args.out, config, result.schedule, vio,
            mutation=args.mutate,
            meta={
                "states": result.states,
                "transitions": result.transitions,
                "schedule_raw": result.schedule_raw,
            },
        )
        print(f"wrote {path}")
    return EXIT_VIOLATION


def _cmd_replay(args) -> int:
    ce = load_counterexample(args.file)
    if args.recorded_mutation and args.mutate:
        raise McError("--recorded-mutation and --mutate are mutually exclusive")
    mutate = ce.mutation if args.recorded_mutation else args.mutate
    label = f"mutate={mutate}" if mutate else "HEAD"
    result = replay_schedule(ce.config, ce.schedule, mutate=mutate)
    print(f"replay {args.file} [{label}]: {len(ce.schedule)} actions")
    _print_schedule(ce.schedule)
    if result.violation is None:
        print(f"applied cleanly ({result.applied} actions, no violation)")
        reproduced = False
    else:
        vio = result.violation
        print(f"VIOLATION at step {result.step} [{vio.invariant}] {vio.message}")
        reproduced = True
        if (
            args.expect_violation
            and vio.invariant != ce.violation.invariant
        ):
            raise McError(
                f"replay violated {vio.invariant!r} but the counterexample "
                f"records {ce.violation.invariant!r} — stale artifact?"
            )
    if args.expect_violation:
        return 0 if reproduced else EXIT_VIOLATION
    return EXIT_VIOLATION if reproduced else 0


def _stats_line(path: Path) -> str:
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise McError(f"cannot read stats from {path}: {exc}") from None
    # discriminate on "version": explore stats files carry a (possibly
    # null) "schedule" key too, so its mere presence is not enough
    if "version" in raw:  # a counterexample file
        ce = load_counterexample(path)
        return (
            f"{path.name}: counterexample [{ce.violation.invariant}] "
            f"{len(ce.schedule)} actions, nodes={ce.config.nodes} "
            f"blocks={ce.config.blocks} epochs={ce.config.epochs}, "
            f"mutation={ce.mutation or '-'}"
        )
    if "states" in raw:  # an explore --stats-out file
        coverage = "exhausted" if raw.get("exhausted") else "budget-stopped"
        return (
            f"{path.name}: explore {coverage} {raw['states']} states, "
            f"{raw.get('transitions', '?')} transitions, "
            f"depth {raw.get('depth', '?')}, "
            f"{raw.get('states_per_sec', '?')} states/s"
        )
    raise McError(f"{path} is neither an explore stats file nor a counterexample")


def _cmd_stats(args) -> int:
    paths: list[Path] = []
    for name in args.path:
        p = Path(name)
        if p.is_dir():
            paths.extend(sorted(p.glob("*.json")))
        else:
            paths.append(p)
    if not paths:
        raise McError("no stats or counterexample files found")
    for p in paths:
        print(_stats_line(p))
    return 0


def _add_config_flags(sub) -> None:
    sub.add_argument("--nodes", type=int, default=2, help="nodes (1..4)")
    sub.add_argument("--blocks", type=int, default=1, help="shared blocks (1..4)")
    sub.add_argument("--epochs", type=int, default=1, help="epochs (1..3)")
    sub.add_argument(
        "--ops-per-epoch", type=int, default=2, metavar="N",
        help="per-node op budget per epoch (barriers excluded)",
    )
    sub.add_argument(
        "--ops", metavar="OP,OP,...",
        help=f"restrict the op alphabet (default: {','.join(OPS)})",
    )
    sub.add_argument(
        "--no-faults", action="store_true",
        help="skip fault-mode variants of every transition",
    )
    sub.add_argument(
        "--fault-budget", type=int, default=2, metavar="N",
        help="max fault-mode transitions along any one path",
    )
    sub.add_argument(
        "--symmetry", action="store_true",
        help="dedup states modulo node-id permutation",
    )
    sub.add_argument(
        "--max-states", type=int, default=500_000, metavar="N",
        help="state budget (soft stop unless --require-exhaustive)",
    )
    sub.add_argument(
        "--max-depth", type=int, default=128, metavar="N",
        help="transition-fairness bound (BFS wave budget)",
    )


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description="Exhaustive small-config model checking of the Dir1SW + "
                    "CICO protocol: explore interleavings, replay "
                    "counterexamples, summarize stats.",
    )
    add_version(parser, "repro-mc")
    subs = parser.add_subparsers(dest="command", required=True)

    explore_p = subs.add_parser(
        "explore", help="exhaust a small config (exit 1 on violation)",
    )
    _add_config_flags(explore_p)
    explore_p.add_argument(
        "--mutate", metavar="NAME",
        help="check a deliberately broken protocol shim (repro.mc.mutations)",
    )
    explore_p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan frontier waves across N pool workers",
    )
    explore_p.add_argument(
        "--no-minimize", action="store_true",
        help="skip ddmin minimization of the counterexample schedule",
    )
    explore_p.add_argument(
        "--require-exhaustive", action="store_true",
        help="error (exit 2) if a budget stops exploration early",
    )
    explore_p.add_argument(
        "--out", metavar="FILE",
        help="write the counterexample JSON here when a violation is found",
    )
    explore_p.add_argument(
        "--stats-out", metavar="FILE",
        help="write exploration stats JSON here",
    )
    explore_p.set_defaults(fn=_cmd_explore)

    replay_p = subs.add_parser(
        "replay", help="deterministically replay a counterexample file",
    )
    replay_p.add_argument("file", help="counterexamples/*.json path")
    replay_p.add_argument(
        "--mutate", metavar="NAME",
        help="re-seed this protocol mutation before replaying",
    )
    replay_p.add_argument(
        "--recorded-mutation", action="store_true",
        help="re-seed the mutation recorded in the file",
    )
    replay_p.add_argument(
        "--expect-violation", action="store_true",
        help="exit 0 iff the replay reproduces the recorded violation "
             "(CI guard against vacuous counterexamples)",
    )
    replay_p.set_defaults(fn=_cmd_replay)

    stats_p = subs.add_parser(
        "stats", help="summarize stats / counterexample files",
    )
    stats_p.add_argument(
        "path", nargs="+",
        help="stats JSON, counterexample JSON, or a directory of them",
    )
    stats_p.set_defaults(fn=_cmd_stats)

    args = parser.parse_args(argv)
    return args.fn(args)


def main(argv=None) -> int:
    return run_cli(_main, argv, prog="repro-mc")


if __name__ == "__main__":
    raise SystemExit(main())
