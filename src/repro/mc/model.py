"""Canonical state abstraction + transition relation for the model checker.

The model drives the *production* :class:`~repro.coherence.protocol.Dir1SWProtocol`
— not a re-implementation — so what gets proved is the code that simulates.
A model state is the architectural part of a machine at rest (no protocol
operation in flight): per-node cache lines, directory entries, in-flight
prefetch sets, plus the exploration bookkeeping (epoch, per-node remaining
op budget, barrier arrival flags, remaining fault budget).  Everything a
state omits is deliberately *timing*: clocks, stall cycles, stats, traffic
counts, transaction ids, and cache LRU order — small configs are sized so
the fully-associative per-node cache holds every block and never evicts,
which is what makes LRU order irrelevant and the abstraction exact.

A transition is one node performing one action: a shared read or write, a
CICO directive (``check_out_S/X``, ``check_in``, ``prefetch_S/X``) or a
barrier arrival; when every live node has arrived, the barrier releases
within the same transition (epoch advances, op budgets refill).  Any
action may additionally fire in *fault mode*: the operation runs under a
scripted worst-case fault tape (a transient NACK + retry on the slow path,
every message duplicated — the deterministic skeleton of
:mod:`repro.faults`) and the checker asserts the architectural result is
identical to the clean application, which is exactly the barrier-deferred
stall contract PR 4 promises.

Safety properties checked on every transition (same invariants, same names
as :mod:`repro.verify`): directory/cache agreement (bidirectional),
SWMR, directive post-conditions, and protocol self-consistency
(:meth:`Dir1SWProtocol.invariant_check` + :meth:`DirEntry.check`).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.cache.state import LineState
from repro.coherence.directory import DirEntry, DirState
from repro.coherence.protocol import Dir1SWProtocol, _Pending
from repro.errors import McError, ProtocolError

#: the full op alphabet (excludes "barrier", which is always available)
OPS = (
    "read",
    "write",
    "check_out_S",
    "check_out_X",
    "check_in",
    "prefetch_S",
    "prefetch_X",
)

BARRIER = "barrier"


@dataclass(frozen=True, slots=True)
class Action:
    """One transition: ``node`` performs ``op`` (on ``block``, for ops)."""

    node: int
    op: str
    block: int = -1  # -1 for barrier
    fault: bool = False  # run under the scripted worst-case fault tape

    def label(self) -> str:
        if self.op == BARRIER:
            return f"node{self.node} barrier"
        text = f"node{self.node} {self.op} block{self.block}"
        return text + (" +fault" if self.fault else "")

    def as_dict(self) -> dict:
        out = {"node": self.node, "op": self.op}
        if self.op != BARRIER:
            out["block"] = self.block
        if self.fault:
            out["fault"] = True
        return out

    @staticmethod
    def from_dict(raw: dict) -> "Action":
        try:
            return Action(
                node=int(raw["node"]),
                op=str(raw["op"]),
                block=int(raw.get("block", -1)),
                fault=bool(raw.get("fault", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise McError(f"malformed schedule action {raw!r}: {exc}") from None


@dataclass(frozen=True)
class MCConfig:
    """One exploration problem: the machine geometry and the budgets."""

    nodes: int = 2
    blocks: int = 1
    epochs: int = 1
    ops_per_epoch: int = 2
    ops: tuple[str, ...] = OPS
    faults: bool = True  # explore fault-mode variants of every op
    fault_budget: int = 2  # max fault-mode transitions along one path
    symmetry: bool = False  # dedup modulo node-id permutation
    max_states: int = 500_000
    max_depth: int = 128  # transition-fairness bound (livelock guard)
    block_size: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.nodes <= 4:
            raise McError(f"mc nodes must be 1..4 (small configs), got {self.nodes}")
        if not 1 <= self.blocks <= 4:
            raise McError(f"mc blocks must be 1..4 (small configs), got {self.blocks}")
        if not 1 <= self.epochs <= 3:
            raise McError(f"mc epochs must be 1..3 (small configs), got {self.epochs}")
        if self.ops_per_epoch < 0:
            raise McError(f"ops_per_epoch must be >= 0, got {self.ops_per_epoch}")
        bad = [op for op in self.ops if op not in OPS]
        if bad:
            raise McError(f"unknown op(s) {bad}; alphabet is {OPS}")
        if self.max_states < 1 or self.max_depth < 1:
            raise McError("max_states and max_depth must be >= 1")

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes,
            "blocks": self.blocks,
            "epochs": self.epochs,
            "ops_per_epoch": self.ops_per_epoch,
            "ops": list(self.ops),
            "faults": self.faults,
            "fault_budget": self.fault_budget,
            "symmetry": self.symmetry,
            "max_states": self.max_states,
            "max_depth": self.max_depth,
            "block_size": self.block_size,
        }

    @staticmethod
    def from_dict(raw: dict) -> "MCConfig":
        try:
            kwargs = dict(raw)
            if "ops" in kwargs:
                kwargs["ops"] = tuple(kwargs["ops"])
            return MCConfig(**kwargs)
        except TypeError as exc:
            raise McError(f"malformed mc config {raw!r}: {exc}") from None


@dataclass(frozen=True)
class Violation:
    """A safety property that failed on some transition."""

    invariant: str  # swmr / dir-cache-agreement / directive-postcondition /
    #               # protocol-state / fault-invariance / deadlock
    message: str
    node: int | None = None
    block: int | None = None

    def as_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "node": self.node,
            "block": self.block,
        }

    @staticmethod
    def from_dict(raw: dict) -> "Violation":
        return Violation(
            invariant=str(raw.get("invariant", "?")),
            message=str(raw.get("message", "")),
            node=raw.get("node"),
            block=raw.get("block"),
        )


class _ScriptedFaults:
    """The deterministic worst-case fault tape for fault-mode transitions.

    Mirrors the :class:`~repro.faults.FaultInjector` interface the protocol
    and network consult, but with every probabilistic choice pinned to its
    most adversarial deterministic value: every slow-path operation is
    NACKed once and retried, and every message is delivered twice.  Latency
    penalties are swallowed (the model has no clock) — what matters is that
    the *architectural* outcome must match the clean application.
    """

    def transient_nacks(self, node: int) -> int:
        return 1

    def retry_penalty(self, nacks: int, hop_latency: int) -> int:
        return nacks * 2 * hop_latency

    def owe(self, node: int, cycles: int) -> None:
        pass  # no clock to charge

    def on_message(self, node: int, kind, count: int, hop_latency: int) -> int:
        return count  # duplicate everything

    def barrier_stall(self, node: int) -> int:
        return 0

    def final_stall(self, node: int) -> int:
        return 0


# State key layout (all nested tuples, fully ordered and hashable):
#   (epoch,
#    ops_left:  (int, ...) per node,
#    at_barrier:(bool, ...) per node,
#    faults_left,
#    caches:    ((block, state, dirty), ...) per node, sorted by block,
#    directory: ((block, state, count, ptr|-1, (sharers...)), ...) by block,
#    pending:   ((block, exclusive), ...) per node, sorted)
StateKey = tuple


class ProtocolModel:
    """``enabled_actions`` / ``apply`` / ``canonical`` over protocol states."""

    def __init__(self, config: MCConfig, mutate: str | None = None):
        self.config = config
        self.mutate = mutate
        # fully-associative cache sized to hold every block: no evictions,
        # so dropping LRU order from the state key loses nothing
        cap = 1
        while cap < config.blocks:
            cap <<= 1
        self._cache_assoc = cap
        self._cache_size = config.block_size * cap

    # ------------------------------------------------------------- states
    def initial_key(self) -> StateKey:
        cfg = self.config
        n = cfg.nodes
        return (
            0,
            (cfg.ops_per_epoch,) * n,
            (False,) * n,
            cfg.fault_budget if cfg.faults else 0,
            ((),) * n,
            (),
            ((),) * n,
        )

    def is_final(self, key: StateKey) -> bool:
        return key[0] >= self.config.epochs

    def materialize(self, key: StateKey) -> Dir1SWProtocol:
        """Build a live protocol engine in exactly this architectural state."""
        cfg = self.config
        proto = Dir1SWProtocol(
            num_nodes=cfg.nodes,
            cache_size=self._cache_size,
            block_size=cfg.block_size,
            assoc=self._cache_assoc,
        )
        _epoch, _ops, _atb, _faults, caches, directory, pending = key
        for node, lines in enumerate(caches):
            proto.caches[node].restore_lines(
                [(block, state, dirty) for block, state, dirty in lines]
            )
        entries = proto.directory.entries()
        for block, state, count, ptr, sharers in directory:
            entries[block] = DirEntry(
                state=DirState(state),
                count=count,
                ptr=None if ptr < 0 else ptr,
                sharers=set(sharers),
            )
        for node, pend in enumerate(pending):
            proto._pending[node] = {
                block: _Pending(arrival=0, exclusive=bool(excl))
                for block, excl in pend
            }
        if self.mutate is not None:
            from repro.mc.mutations import apply_mutation

            apply_mutation(proto, self.mutate)
        return proto

    def _arch(self, proto: Dir1SWProtocol) -> tuple:
        """The architectural part of a key, read back from a live protocol."""
        caches = tuple(
            tuple(sorted(
                (line.block, line.state.value, line.dirty)
                for line in cache.lines()
            ))
            for cache in proto.caches
        )
        directory = tuple(sorted(
            (
                block,
                entry.state.value,
                entry.count,
                -1 if entry.ptr is None else entry.ptr,
                tuple(sorted(entry.sharers)),
            )
            for block, entry in proto.directory.entries().items()
            if entry.state is not DirState.IDLE or entry.sharers
        ))
        pending = tuple(
            tuple(sorted((block, bool(p.exclusive)) for block, p in per.items()))
            for per in proto._pending
        )
        return caches, directory, pending

    # ------------------------------------------------------------ actions
    def enabled_actions(self, key: StateKey) -> list[Action]:
        cfg = self.config
        epoch, ops_left, at_barrier, faults_left = key[0], key[1], key[2], key[3]
        if epoch >= cfg.epochs:
            return []
        actions: list[Action] = []
        for node in range(cfg.nodes):
            if at_barrier[node]:
                continue
            if ops_left[node] > 0:
                for op in cfg.ops:
                    for block in range(cfg.blocks):
                        actions.append(Action(node, op, block))
                        if cfg.faults and faults_left > 0:
                            actions.append(Action(node, op, block, fault=True))
            actions.append(Action(node, BARRIER))
        return actions

    def is_enabled(self, key: StateKey, action: Action) -> bool:
        """Cheap applicability test (used by replay and ddmin)."""
        cfg = self.config
        epoch, ops_left, at_barrier, faults_left = key[0], key[1], key[2], key[3]
        if epoch >= cfg.epochs:
            return False
        if not 0 <= action.node < cfg.nodes or at_barrier[action.node]:
            return False
        if action.op == BARRIER:
            return True
        return (
            action.op in cfg.ops
            and 0 <= action.block < cfg.blocks
            and ops_left[action.node] > 0
            and (not action.fault or (cfg.faults and faults_left > 0))
        )

    # -------------------------------------------------------------- apply
    def apply(
        self, key: StateKey, action: Action
    ) -> tuple[StateKey | None, Violation | None]:
        """One transition.  Returns (successor, None) or (None, violation).

        The successor is a canonical *actual* key (symmetry reduction is
        the explorer's concern, not apply's) and the application is a pure
        function of (key, action) — the determinism replay relies on.
        """
        if not self.is_enabled(key, action):
            raise McError(
                f"action {action.label()!r} is not enabled in this state "
                f"(stale or hand-edited schedule?)"
            )
        epoch, ops_left, at_barrier, faults_left = key[0], key[1], key[2], key[3]
        cfg = self.config

        if action.op == BARRIER:
            atb = list(at_barrier)
            atb[action.node] = True
            if all(atb):
                # barrier release happens inside the same transition
                proto = self.materialize(key)
                violation = self._scan(proto)
                if violation is not None:
                    return None, violation
                return (
                    epoch + 1,
                    (cfg.ops_per_epoch,) * cfg.nodes,
                    (False,) * cfg.nodes,
                    faults_left,
                    *self._arch(proto),
                ), None
            return (
                epoch, ops_left, tuple(atb), faults_left, *key[4:]
            ), None

        proto = self.materialize(key)
        violation = self._apply_op(proto, action)
        if violation is not None:
            return None, violation
        arch = self._arch(proto)

        if action.fault:
            # The fault-mode application must land in the same architectural
            # state as the clean one: faults may change timing, never state.
            clean = self.materialize(key)
            clean_violation = self._apply_op(clean, Action(
                action.node, action.op, action.block, fault=False
            ))
            if clean_violation is not None:
                return None, clean_violation
            if self._arch(clean) != arch:
                return None, Violation(
                    "fault-invariance",
                    f"{action.label()} reached a different architectural "
                    f"state than its clean application — fault events must "
                    f"only change timing",
                    node=action.node,
                    block=action.block,
                )
            faults_left -= 1

        ops = list(ops_left)
        ops[action.node] -= 1
        return (epoch, tuple(ops), at_barrier, faults_left, *arch), None

    # ----------------------------------------------------------- checking
    def _apply_op(self, proto: Dir1SWProtocol, action: Action) -> Violation | None:
        """Run one protocol op + its post-condition + the full state scan."""
        node, block = action.node, action.block
        if action.fault:
            injector = _ScriptedFaults()
            proto.faults = injector
            proto.network.faults = injector
        try:
            if action.op == "read":
                proto.read(node, block)
            elif action.op == "write":
                proto.write(node, block)
            elif action.op == "check_out_S":
                proto.check_out(node, block, exclusive=False)
            elif action.op == "check_out_X":
                proto.check_out(node, block, exclusive=True)
            elif action.op == "check_in":
                proto.check_in(node, block)
            elif action.op == "prefetch_S":
                proto.prefetch(node, block, exclusive=False)
            elif action.op == "prefetch_X":
                proto.prefetch(node, block, exclusive=True)
            else:  # pragma: no cover - guarded by is_enabled
                raise McError(f"unknown op {action.op!r}")
        except ProtocolError as exc:
            return Violation(
                "protocol-state",
                f"{action.label()} raised ProtocolError: {exc}",
                node=node,
                block=block,
            )
        violation = self._check_post(proto, action)
        if violation is not None:
            return violation
        return self._scan(proto)

    def _check_post(self, proto: Dir1SWProtocol, action: Action) -> Violation | None:
        """The directive/access post-conditions of :mod:`repro.verify`."""
        from repro.verify.format import format_cache_line, format_dir_entry

        node, block = action.node, action.block
        line = proto.caches[node].lookup(block)
        if action.op == "write":
            if line is None or line.state is not LineState.EXCLUSIVE:
                return Violation(
                    "swmr",
                    f"after {action.label()} the writer must hold the block "
                    f"EXCLUSIVE, found {format_cache_line(line)}",
                    node=node, block=block,
                )
            entry = proto.directory.peek(block)
            if entry is None or entry.state is not DirState.RW or entry.ptr != node:
                return Violation(
                    "swmr",
                    f"after {action.label()} the directory must record the "
                    f"writer as exclusive owner, found {format_dir_entry(entry)}",
                    node=node, block=block,
                )
            for other, cache in enumerate(proto.caches):
                if other != node and cache.lookup(block) is not None:
                    return Violation(
                        "swmr",
                        f"after {action.label()} node {other} still holds "
                        f"{format_cache_line(cache.lookup(block))} — a copy "
                        f"of a block node {node} just wrote",
                        node=node, block=block,
                    )
        elif action.op in ("read", "check_out_S"):
            if line is None:
                return Violation(
                    "dir-cache-agreement",
                    f"after {action.label()} the issuer's cache must hold "
                    f"the block, found absent",
                    node=node, block=block,
                )
        elif action.op == "check_out_X":
            if line is None or line.state is not LineState.EXCLUSIVE:
                return Violation(
                    "directive-postcondition",
                    f"after {action.label()} the held line must be "
                    f"EXCLUSIVE, found {format_cache_line(line)}",
                    node=node, block=block,
                )
        elif action.op == "check_in":
            if line is not None:
                return Violation(
                    "directive-postcondition",
                    f"after {action.label()} the issuer must no longer hold "
                    f"the block, found {format_cache_line(line)}",
                    node=node, block=block,
                )
        # prefetches are non-binding hints: no post-condition
        return None

    def _scan(self, proto: Dir1SWProtocol) -> Violation | None:
        """Full directory/cache cross-check + cache-side SWMR scan."""
        try:
            proto.invariant_check()
        except ProtocolError as exc:
            return Violation("dir-cache-agreement", str(exc))
        holders: dict[int, list[tuple[int, LineState]]] = {}
        for node, cache in enumerate(proto.caches):
            for line in cache.lines():
                holders.setdefault(line.block, []).append((node, line.state))
        for block, held in holders.items():
            if len(held) > 1 and any(
                state is LineState.EXCLUSIVE for _, state in held
            ):
                nodes = sorted(node for node, _ in held)
                return Violation(
                    "swmr",
                    f"block {block} held EXCLUSIVE while nodes {nodes} all "
                    f"have copies",
                    node=nodes[0], block=block,
                )
        return None

    # ----------------------------------------------------------- symmetry
    def canonical(self, key: StateKey) -> StateKey:
        """The dedup representative: minimum over node-id permutations when
        symmetry reduction is on, the key itself otherwise."""
        cfg = self.config
        if not cfg.symmetry or cfg.nodes == 1:
            return key
        best = None
        for perm in permutations(range(cfg.nodes)):
            candidate = self._permute(key, perm)
            if best is None or candidate < best:
                best = candidate
        return best

    def _permute(self, key: StateKey, perm: tuple[int, ...]) -> StateKey:
        """Rename node ``i`` to ``perm[i]`` throughout the key."""
        epoch, ops_left, at_barrier, faults_left, caches, directory, pending = key
        n = self.config.nodes
        ops = [0] * n
        atb = [False] * n
        cach: list[tuple] = [()] * n
        pend: list[tuple] = [()] * n
        for i in range(n):
            ops[perm[i]] = ops_left[i]
            atb[perm[i]] = at_barrier[i]
            cach[perm[i]] = caches[i]
            pend[perm[i]] = pending[i]
        dirs = tuple(sorted(
            (
                block,
                state,
                count,
                -1 if ptr < 0 else perm[ptr],
                tuple(sorted(perm[s] for s in sharers)),
            )
            for block, state, count, ptr, sharers in directory
        ))
        return (
            epoch, tuple(ops), tuple(atb), faults_left,
            tuple(cach), dirs, tuple(pend),
        )
