"""Reproduction of *Cachier: A Tool for Automatically Inserting CICO
Annotations* (Chilimbi & Larus, ICPP 1994).

Public API map — each name re-exported here is the entry point a downstream
user needs for one role:

* **Writing programs**: :class:`ProgramBuilder`, :func:`parse_program`,
  :func:`unparse_program`.
* **Running them**: :class:`MachineConfig`, :func:`run_program`,
  :func:`trace_program`.
* **The tool**: :class:`Cachier`, :class:`Policy` (and the
  ``cachier-annotate`` console script).
* **The model**: :func:`estimate_costs` (static CICO cost reports),
  :mod:`repro.cico.cost_model` (the paper's closed forms).
* **The evaluation**: :func:`get_workload`, :mod:`repro.harness.figure6`
  (and the ``cachier-figure6`` console script).
"""

from repro.cachier.annotator import Cachier, CachierResult, Policy
from repro.cachier.reports import SharingReport
from repro.cico.report import CostReport, estimate_costs
from repro.harness.runner import run_program, trace_program
from repro.lang.builder import ProgramBuilder
from repro.lang.parse import parse_program
from repro.lang.unparse import unparse_program
from repro.machine.config import MachineConfig
from repro.workloads.base import get_workload

__version__ = "1.0.0"

__all__ = [
    "Cachier",
    "CachierResult",
    "Policy",
    "SharingReport",
    "CostReport",
    "estimate_costs",
    "run_program",
    "trace_program",
    "ProgramBuilder",
    "parse_program",
    "unparse_program",
    "MachineConfig",
    "get_workload",
    "__version__",
]
