"""Cachier: automatic insertion of CICO annotations (the paper's core).

The pipeline (Sections 3.4 and 4):

1. :mod:`repro.cachier.epochs` — fold the trace into per-(epoch, node) shared
   read/write sets, applying the paper's write-fault processing.
2. :mod:`repro.cachier.drfs` — detect data races and false sharing per epoch.
3. :mod:`repro.cachier.equations` — the Section 4.1 set equations, in both
   Programmer and Performance flavours.
4. :mod:`repro.cachier.placement` / :mod:`repro.cachier.presentation` —
   Section 4.2/4.3: where annotations go and how they are made readable
   (epoch-boundary vs near-reference, cache-capacity spill, loop hoisting).
5. :mod:`repro.cachier.annotator` — the tool itself:
   ``Cachier(program, trace).annotate(policy)``.
"""

from repro.cachier.annotator import Cachier, CachierResult, Policy
from repro.cachier.drfs import DrfsInfo, detect_all, detect_drfs
from repro.cachier.epochs import EpochAccess, EpochTable
from repro.cachier.equations import AnnotationSets, performance_cico, programmer_cico
from repro.cachier.reports import SharingReport
from repro.cachier.suggest import Advice, Suggestion, advise

__all__ = [
    "Cachier",
    "CachierResult",
    "Policy",
    "DrfsInfo",
    "detect_all",
    "detect_drfs",
    "EpochAccess",
    "EpochTable",
    "AnnotationSets",
    "performance_cico",
    "programmer_cico",
    "SharingReport",
    "Advice",
    "Suggestion",
    "advise",
]
