"""The Section 4.1 annotation equations.

Programmer CICO (expose all communication)::

    co_x[i] = notDRFS{ SW_i - SW_{i-1} } + DRFS{ SW_i }
    co_s[i] = notFS  { SR_i - SR_{i-1} } + FS  { SR_i }
    ci[i]   = notDRFS{ S_i  - S_{i+1}  } + DRFS{ S_i }

Performance CICO (only annotations that pay under Dir1SW, which already
performs implicit check-outs at misses)::

    co_x[i] = notDRFS{ WF_i - SW_{i-1} } + DRFS{ WF_i }
    co_s[i] = {}
    ci[i]   = notDRFS{ SW_i - SW_{i+1} }
            + notDRFS{ SR_i  ∩ SW_{i+1}(any processor) }
            + DRFS{ S_i }

All sets are per (epoch *i*, processor *p*); the DRFS/FS classification is
per epoch *i* across processors.  ``SW_{i+1}(any)`` is the union over all
processors — "will be written by some processor in the next epoch".

Rationale (from the paper): a raced or falsely-shared block will not stay in
a cache long, so check it out and straight back in; an unraced block should
only be checked out if the processor did not already have it from the
previous epoch, and only checked in if the processor will not use it in the
next (modelling the cache across epoch boundaries with one epoch of
history — a block idle for longer is likely replaced anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachier.drfs import DrfsInfo
from repro.cachier.epochs import EpochTable


@dataclass
class AnnotationSets:
    """Annotation address sets for one (epoch, node)."""

    co_x: set[int] = field(default_factory=set)
    co_s: set[int] = field(default_factory=set)
    ci: set[int] = field(default_factory=set)

    def total(self) -> int:
        return len(self.co_x) + len(self.co_s) + len(self.ci)


def _prev_sw(table: EpochTable, epoch: int, node: int, history: int) -> set[int]:
    """SW over the previous ``history`` epochs (paper: history == 1)."""
    out: set[int] = set()
    for h in range(1, history + 1):
        out |= table.get(epoch - h, node).sw
    return out


def _prev_sr(table: EpochTable, epoch: int, node: int, history: int) -> set[int]:
    out: set[int] = set()
    for h in range(1, history + 1):
        out |= table.get(epoch - h, node).sr
    return out


def _next_s(table: EpochTable, epoch: int, node: int, history: int) -> set[int]:
    out: set[int] = set()
    for h in range(1, history + 1):
        out |= table.get(epoch + h, node).s
    return out


def programmer_cico(
    table: EpochTable,
    drfs: dict[int, DrfsInfo],
    epoch: int,
    node: int,
    history: int = 1,
) -> AnnotationSets:
    cur = table.get(epoch, node)
    info = drfs[epoch]
    prev_sw = _prev_sw(table, epoch, node, history)
    prev_sr = _prev_sr(table, epoch, node, history)
    return AnnotationSets(
        co_x=info.not_drfs(cur.sw - prev_sw) | info.drfs(cur.sw),
        co_s=info.not_fs(cur.sr - prev_sr) | info.fs(cur.sr),
        ci=info.not_drfs(cur.s - _next_s(table, epoch, node, history))
        | info.drfs(cur.s),
    )


def performance_cico(
    table: EpochTable,
    drfs: dict[int, DrfsInfo],
    epoch: int,
    node: int,
    history: int = 1,
) -> AnnotationSets:
    cur = table.get(epoch, node)
    nxt = table.get(epoch + 1, node)
    info = drfs[epoch]
    # Two refinements over the literal Section 4.1 text, both within its
    # stated rationale ("a processor should check-in a location only if it
    # is not going to use it again"):
    #
    # * "written by some processor in the next epoch" means some *other*
    #   processor — the check-in spares the writer an invalidation of our
    #   copy, so a location we will write ourselves does not qualify;
    # * a written location is only worth checking in if another processor
    #   touches it later in the trace (flushing effectively-private data
    #   just makes its owner re-fetch it) and this processor does not use
    #   it in the very next epoch.
    sw_next_other = table.sw_any(epoch + 1) - nxt.sw
    prev_held = _prev_sw(table, epoch, node, history)
    ci = (
        info.not_drfs(
            table.touched_later_by_other(epoch, node, cur.sw - nxt.s)
        )
        | info.not_drfs(cur.sr & sw_next_other)
        | info.drfs(cur.s)
    )
    return AnnotationSets(
        co_x=info.not_drfs(cur.wf - prev_held) | info.drfs(cur.wf),
        co_s=set(),
        ci=ci,
    )


def all_epochs(
    table: EpochTable,
    drfs: dict[int, DrfsInfo],
    policy: str,
    history: int = 1,
) -> dict[tuple[int, int], AnnotationSets]:
    """Annotation sets for every (epoch, node) in the trace."""
    fn = programmer_cico if policy == "programmer" else performance_cico
    out: dict[tuple[int, int], AnnotationSets] = {}
    for epoch in range(table.num_epochs):
        for node in table.nodes_in(epoch):
            out[(epoch, node)] = fn(table, drfs, epoch, node, history=history)
    return out
