"""``cachier-annotate``: run the tool on a built-in workload and print the
annotated source, the annotation statistics and the sharing report.

Example::

    cachier-annotate --workload matmul_racing --policy performance
    cachier-annotate --workload ocean --policy programmer --prefetch
"""

from __future__ import annotations

import argparse

from repro.cachier.annotator import Cachier, Policy
from repro.cliutil import add_version, run_cli
from repro.harness.runner import trace_program
from repro.lang.unparse import unparse_program
from repro.trace.file_io import salvage_trace, write_trace
from repro.workloads.base import get_workload, registry


def _spec_from_source(args):
    """Build a WorkloadSpec from a self-describing source file."""
    import json
    import os

    from repro.workloads.base import spec_from_source

    with open(args.source, "r", encoding="utf-8") as fh:
        text = fh.read()
    params = None
    if args.params:
        if os.path.exists(args.params):
            with open(args.params, "r", encoding="utf-8") as fh:
                raw = fh.read()
        else:
            raw = args.params
        params = json.loads(raw)
    return spec_from_source(
        text,
        name=os.path.basename(args.source),
        num_nodes=args.nodes,
        cache_size=args.cache_size,
        block_size=args.block_size,
        assoc=args.assoc,
        params=params,
    )


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_version(parser, "cachier-annotate")
    parser.add_argument(
        "--workload", default="matmul_racing", choices=sorted(registry())
    )
    parser.add_argument(
        "--source", metavar="FILE",
        help="annotate a pseudocode source file instead of a built-in "
             "workload; the file must carry inline `array` declarations "
             "(see unparse_program(declarations=True))",
    )
    parser.add_argument(
        "--nodes", type=int, default=4,
        help="processor count for --source runs (default 4)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=8192,
        help="per-node cache bytes for --source runs (default 8192)",
    )
    parser.add_argument(
        "--block-size", type=int, default=32,
        help="cache block bytes for --source runs (default 32)",
    )
    parser.add_argument(
        "--assoc", type=int, default=4,
        help="cache associativity for --source runs (default 4)",
    )
    parser.add_argument(
        "--params", metavar="JSON",
        help="for --source: per-node parameter bindings as JSON, either "
             'inline or a file path, e.g. \'{"0": {"Lo": 0, "Hi": 7}}\'',
    )
    parser.add_argument(
        "--policy",
        default="performance",
        choices=[p.value for p in Policy],
    )
    parser.add_argument("--prefetch", action="store_true")
    parser.add_argument(
        "--history", type=int, default=1, help="epoch history depth (paper: 1)"
    )
    parser.add_argument(
        "--save-trace", metavar="PATH", help="also write the trace file"
    )
    parser.add_argument(
        "--trace", metavar="PATH",
        help="annotate from an existing trace file instead of running the "
             "trace-mode simulation; a truncated or corrupted file is "
             "salvaged down to its complete epochs (with a prominent "
             "warning) rather than rejected",
    )
    parser.add_argument(
        "--faults", type=int, metavar="SEED", default=None,
        help="inject the seeded fault tape (repro.faults) into the trace "
             "run; per-epoch miss sets — and therefore the annotations — "
             "are invariant under it",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run the online coherence invariant checker during the trace "
             "run (failures exit 2 with a diagnostic)",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the data-race report"
    )
    parser.add_argument(
        "--cost-report", action="store_true",
        help="print the static CICO cost estimate for the annotated program",
    )
    parser.add_argument(
        "--suggest", action="store_true",
        help="print restructuring suggestions (locks / padding / "
             "privatization) derived from the sharing report",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="also write the annotated source to a file",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="observe the trace run and print its metric summary",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome trace-event JSON of the trace run (open in "
             "Perfetto); implies --obs",
    )
    args = parser.parse_args(argv)

    if args.source:
        spec = _spec_from_source(args)
    else:
        spec = get_workload(args.workload)
    observer = None
    if args.obs or args.trace_out:
        from repro.obs.session import Observer

        observer = Observer(meta={"name": spec.name, "mode": "trace"})
    if args.trace:
        trace, salvage_warnings = salvage_trace(args.trace)
        for warning in salvage_warnings:
            print(f"// WARNING: {args.trace}: {warning}")
    else:
        trace = trace_program(spec.program, spec.config, spec.params_fn,
                              observer=observer,
                              faults_seed=args.faults, verify=args.verify)
    if args.save_trace:
        write_trace(trace, args.save_trace)
    cachier = Cachier(
        spec.program,
        trace,
        params_fn=spec.params_fn,
        cache_size=spec.cachier_cache_size,
    )
    result = cachier.annotate(
        Policy(args.policy), prefetch=args.prefetch, history=args.history
    )
    print(f"// {spec.name}: {args.policy} CICO"
          + (" + prefetch" if args.prefetch else ""))
    print(unparse_program(result.program))
    stats = result.stats
    print(
        f"// annotations: {stats.boundary} at epoch boundaries, "
        f"{stats.near} near references ({stats.hoisted} hoisted), "
        f"{stats.prefetches} prefetch sites, {stats.comments} flags"
    )
    if observer is not None and observer.observation is not None:
        from repro.obs.cli import render_observation

        print(render_observation(observer.observation))
        if args.trace_out:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(observer.observation, args.trace_out)
            print(f"// chrome trace of the trace run written to "
                  f"{args.trace_out}")
    if args.report:
        print(result.report.render())
    if args.cost_report:
        from repro.cico.report import estimate_costs

        cost = estimate_costs(
            result.program,
            spec.params_fn,
            spec.config.num_nodes,
            block_size=spec.config.block_size,
        )
        print(cost.render())
    if args.suggest:
        from repro.cachier.suggest import advise

        print(advise(result.report).render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(unparse_program(result.program))
    return 0


def main(argv=None) -> int:
    return run_cli(_main, argv, prog="cachier-annotate")


if __name__ == "__main__":
    raise SystemExit(main())
