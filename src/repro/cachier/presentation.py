"""Annotation presentation: applying a plan to the AST, readably.

This is Section 4.3: *"Cachier uses the program's abstract syntax tree to
analyze its loop structure...  This process involves collapsing annotations,
either by placing them inside program loops, or by generating new loops for
them."*

Near-reference operations arrive as (statement pc, kind, array); the
presenter derives the concrete target from the statement's *own index
expressions* (static information) and then **hoists** the annotation out of
enclosing loops when the target is indexed by the loop's induction variable:
``check_out_S B[k, j]`` inside the ``j`` loop becomes
``check_out_S B[k, Ljp:Ujp]`` before it — the exact transformation in the
Section 4.4 example — subject to the cache-capacity budget and never for
raced/falsely-shared targets.

Raced / falsely-shared annotations also get the paper's source flags::

    /*** Data Race on C[i, j] ***/
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachier.mapping import ParamEnv
from repro.cachier.placement import Anchor, BoundaryOp, NearOp, Plan
from repro.errors import CachierError
from repro.lang.ast import (
    Annot,
    AnnotKind,
    AnnotTarget,
    Assign,
    Bin,
    CallStmt,
    Comment,
    Const,
    Expr,
    For,
    If,
    Load,
    Local,
    Param,
    Program,
    RangeSpec,
    Stmt,
    Store,
    Un,
    While,
    fresh_pcs,
)
from repro.lang.loops import StmtIndex, StmtLocation, is_invariant, match_loop_index
from repro.lang.unparse import target_str
from repro.mem.labels import LabelTable

_PREFETCH_OF = {
    AnnotKind.CHECK_OUT_X: AnnotKind.PREFETCH_X,
    AnnotKind.CHECK_OUT_S: AnnotKind.PREFETCH_S,
}


# ------------------------------------------------------------------ expr utils
def find_array_ref(stmt: Stmt, array: str) -> tuple[Expr, ...] | None:
    """Index expressions with which ``stmt`` references ``array``."""
    if isinstance(stmt, Store) and stmt.array == array:
        return stmt.indices
    for expr in _stmt_exprs(stmt):
        found = _find_load(expr, array)
        if found is not None:
            return found
    return None


def _stmt_exprs(stmt: Stmt):
    if isinstance(stmt, Assign):
        yield stmt.expr
    elif isinstance(stmt, Store):
        yield from stmt.indices
        yield stmt.expr
    elif isinstance(stmt, (If, While)):
        yield stmt.cond
    elif isinstance(stmt, CallStmt):
        yield from stmt.args
    elif isinstance(stmt, For):
        yield stmt.lo
        yield stmt.hi


def _find_load(expr: Expr, array: str) -> tuple[Expr, ...] | None:
    t = type(expr)
    if t is Load:
        if expr.array == array:
            return expr.indices
        for index in expr.indices:
            found = _find_load(index, array)
            if found is not None:
                return found
        return None
    if t is Bin:
        return _find_load(expr.left, array) or _find_load(expr.right, array)
    if t is Un:
        return _find_load(expr.operand, array)
    return None


def subst_local(expr: Expr, var: str, repl: Expr) -> Expr:
    """``expr`` with every ``Local(var)`` replaced by ``repl``."""
    t = type(expr)
    if t is Local and expr.name == var:
        return repl
    if t is Bin:
        return Bin(expr.op, subst_local(expr.left, var, repl),
                   subst_local(expr.right, var, repl))
    if t is Un:
        return Un(expr.op, subst_local(expr.operand, var, repl))
    if t is Load:
        return Load(expr.array, tuple(subst_local(i, var, repl) for i in expr.indices))
    return expr


def _expr_has_load(expr: Expr) -> bool:
    t = type(expr)
    if t is Load:
        return True
    if t is Bin:
        return _expr_has_load(expr.left) or _expr_has_load(expr.right)
    if t is Un:
        return _expr_has_load(expr.operand)
    return False


def spec_has_load(spec) -> bool:
    if isinstance(spec, RangeSpec):
        return any(_expr_has_load(e) for e in (spec.lo, spec.hi, spec.step))
    return _expr_has_load(spec)


def _spec_uses_var(spec, var: str) -> bool:
    from repro.lang.loops import expr_locals

    if isinstance(spec, RangeSpec):
        return any(var in expr_locals(e) for e in (spec.lo, spec.hi, spec.step))
    return var in expr_locals(spec)


# --------------------------------------------------------------------- presenter
@dataclass
class PresentationStats:
    boundary: int = 0
    near: int = 0
    hoisted: int = 0
    prefetches: int = 0
    comments: int = 0
    skipped: list[str] = field(default_factory=list)


@dataclass
class _Insert:
    block: list | None  # None => function start/end
    anchor: Stmt | None
    position: str  # before/after/start/end
    stmts: list[Stmt]
    func: str = ""


class Presenter:
    def __init__(
        self,
        program: Program,
        labels: LabelTable,
        env: ParamEnv,
        budget: int,
        prefetch: bool = False,
        max_hoist_levels: int = 1,
    ):
        self.program = program  # the clone being annotated (mutated in place)
        self.labels = labels
        self.env = env
        self.budget = budget
        self.prefetch = prefetch
        self.max_hoist_levels = max_hoist_levels
        self.stats = PresentationStats()
        self._index = StmtIndex(program)
        self._inserts: list[_Insert] = []
        self._seen: set = set()

    # ------------------------------------------------------------------ apply
    def apply(self, plan: Plan) -> PresentationStats:
        for op in plan.boundary:
            self._apply_boundary(op)
        # Check-outs before check-ins at the same site keeps co/ci pairs
        # reading naturally; 'before' ops first so comments hug statements.
        for op in plan.near:
            if op.position == "before":
                self._apply_near(op)
        for op in plan.near:
            if op.position == "after":
                self._apply_near(op)
        for op in plan.prefetch:
            self._apply_pipeline(op)
        self._flush()
        return self.stats

    # ---------------------------------------------------------------- boundary
    def _apply_boundary(self, op: BoundaryOp) -> None:
        stmts: list[Stmt] = [Annot(kind=op.annot, targets=(op.target,))]
        if op.guard_node is not None:
            stmts = [
                If(
                    cond=Bin("==", Param("me"), Const(op.guard_node)),
                    then=stmts,
                    els=[],
                )
            ]
        elif op.guard_not_node is not None:
            stmts = [
                If(
                    cond=Bin("!=", Param("me"), Const(op.guard_not_node)),
                    then=stmts,
                    els=[],
                )
            ]
        key = ("boundary", op.anchor, op.annot, target_str(op.target),
               op.guard_node, op.guard_not_node)
        if key in self._seen:
            return
        self._seen.add(key)
        anchor = op.anchor
        if anchor.kind == "func_start":
            self._inserts.append(_Insert(None, None, "start", stmts, str(anchor.where)))
        elif anchor.kind == "func_end":
            self._inserts.append(_Insert(None, None, "end", stmts, str(anchor.where)))
        else:
            loc = self._index.locate(int(anchor.where))
            position = "after" if anchor.kind == "after_pc" else "before"
            self._inserts.append(_Insert(loc.block, loc.stmt, position, stmts))
        self.stats.boundary += 1

    # -------------------------------------------------------------------- near
    def _apply_near(self, op: NearOp) -> None:
        if op.pc not in self._index:
            self.stats.skipped.append(f"pc {op.pc} not found for {op.annot}")
            return
        loc = self._index.locate(op.pc)
        indices = find_array_ref(loc.stmt, op.array)
        if indices is None:
            self.stats.skipped.append(
                f"no reference to {op.array!r} at pc {op.pc} for {op.annot}"
            )
            return
        specs: tuple = tuple(indices)
        anchor_loc = loc
        if not op.drfs:
            anchor_loc, specs, levels = self._hoist(loc, specs, op.array)
            self.stats.hoisted += levels
        target = AnnotTarget(array=op.array, specs=specs)
        key = (
            "near",
            id(anchor_loc.stmt),
            op.position,
            op.annot,
            target_str(target),
        )
        if key in self._seen:
            return
        self._seen.add(key)
        stmts: list[Stmt] = [Annot(kind=op.annot, targets=(target,))]
        if op.comment:
            rendered = target_str(AnnotTarget(array=op.array, specs=tuple(indices)))
            stmts.append(Comment(text=f"{op.comment} {rendered}"))
            self.stats.comments += 1
        if op.position == "after":
            stmts.reverse()
        self._inserts.append(
            _Insert(anchor_loc.block, anchor_loc.stmt, op.position, stmts)
        )
        self.stats.near += 1

    # ------------------------------------------------------------------- hoist
    def _hoist(
        self,
        loc: StmtLocation,
        specs: tuple,
        array: str,
        for_prefetch: bool = False,
    ) -> tuple[StmtLocation, tuple, int]:
        """Hoist out of up to ``max_hoist_levels`` enclosing loops.

        A level hoists only if every index spec is either the loop's
        induction variable (becoming a range over the loop bounds) or loop
        invariant, and the widened target still fits the capacity budget.
        Prefetch sites additionally hoist through loops their target does
        not depend on at all (pure de-duplication) and get two extra levels
        — a prefetch does not *hold* the block, so wider is safer."""
        levels = 0
        hoists = 0
        max_levels = self.max_hoist_levels + (2 if for_prefetch else 0)
        current_loc = loc
        current_specs = specs
        # Locals that remain meaningful outside a loop are exactly the
        # induction variables of loops still enclosing the hoist point; any
        # other local (e.g. an index loaded from another array) pins the
        # annotation to its statement.
        loop_vars = {l.var for l in loc.loops}
        from repro.lang.loops import expr_locals

        def _spec_locals(spec) -> set[str]:
            if isinstance(spec, RangeSpec):
                return (expr_locals(spec.lo) | expr_locals(spec.hi)
                        | expr_locals(spec.step))
            return expr_locals(spec)

        if any(_spec_locals(s) - loop_vars for s in specs):
            return loc, specs, 0
        for loop in reversed(loc.loops):
            # Never move an annotation across an epoch boundary: a loop
            # whose body synchronises re-establishes coherence state every
            # iteration, so per-iteration annotations are not redundant.
            if self._loop_has_barrier(loop):
                break
            new_specs: list = []
            matched = False
            ok = True
            for spec in current_specs:
                if isinstance(spec, RangeSpec):
                    if _spec_uses_var(spec, loop.var):
                        ok = False
                        break
                    new_specs.append(spec)
                    continue
                offset = match_loop_index(spec, loop)
                if offset is not None:
                    lo: Expr = loop.lo
                    hi: Expr = loop.hi
                    if offset:
                        lo = Bin("+", lo, Const(offset))
                        hi = Bin("+", hi, Const(offset))
                    new_specs.append(RangeSpec(lo=lo, hi=hi, step=loop.step))
                    matched = True
                elif is_invariant(spec, loop):
                    new_specs.append(spec)
                else:
                    ok = False
                    break
            if not ok:
                break
            # Invariant-only levels (the loop never changes the target) are
            # pure de-duplication and always allowed; levels that widen the
            # target count against the hoist budget.
            if matched and hoists >= max_levels:
                break
            target = AnnotTarget(array=array, specs=tuple(new_specs))
            if self._target_bytes(target) > self.budget:
                break
            current_specs = tuple(new_specs)
            current_loc = self._index.locate(loop.pc)
            if matched:
                hoists += 1
            levels += 1
        return current_loc, current_specs, levels

    def _loop_has_barrier(self, loop) -> bool:
        cached = getattr(loop, "_has_barrier", None)
        if cached is None:
            from repro.lang.ast import Barrier, walk_stmts

            cached = any(isinstance(s, Barrier) for s in walk_stmts(loop.body))
            try:
                loop._has_barrier = cached
            except AttributeError:
                pass  # slots: recompute next time
        return cached

    def _target_bytes(self, target: AnnotTarget) -> int:
        """Worst-case per-node footprint of a target, in bytes."""
        if not target.array or target.array not in self.labels:
            # Unknown: size from spec lengths only, 8-byte elements.
            elem, shape = 8, None
        else:
            label = self.labels.get(target.array)
            elem, shape = label.elem_size, label.shape
        total = 1
        for dim, spec in enumerate(target.specs):
            extent = shape[dim] if shape else 1 << 30
            total *= self._spec_len(spec, extent)
        return total * elem

    def _spec_len(self, spec, extent: int) -> int:
        if not isinstance(spec, RangeSpec):
            return 1
        best = 0
        for node in range(self.env.num_nodes):
            lo = self.env.eval_expr(node, spec.lo)
            hi = self.env.eval_expr(node, spec.hi)
            step = self.env.eval_expr(node, spec.step)
            if lo is None or hi is None or not step:
                return extent  # can't evaluate: assume the whole dimension
            best = max(best, max(0, (hi - lo) // step + 1))
        return best

    # ---------------------------------------------------------------- prefetch
    def _apply_pipeline(self, op: NearOp) -> None:
        """Software-pipelined prefetch: at the (hoisted) reference site,
        issue a prefetch for the *next* iteration's target, guarded against
        running off the loop.

        Only statically-analyzable targets qualify: index expressions that
        themselves load shared memory (pointer chasing / index indirection)
        cannot be computed ahead of the access — the reason prefetch buys
        little for Barnes' pointer structures (Section 6)."""
        if op.pc not in self._index:
            self.stats.skipped.append(f"pc {op.pc} not found for {op.annot}")
            return
        loc = self._index.locate(op.pc)
        indices = find_array_ref(loc.stmt, op.array)
        if indices is None:
            self.stats.skipped.append(
                f"no reference to {op.array!r} at pc {op.pc} for {op.annot}"
            )
            return
        if any(_expr_has_load(e) for e in indices):
            self.stats.skipped.append(
                f"{op.array!r} at pc {op.pc}: indirect index, not prefetchable"
            )
            return
        def pipeline_loop(anchor, target_specs):
            # Innermost enclosing loop the target depends on.
            for candidate in reversed(anchor.loops):
                if any(_spec_uses_var(s, candidate.var) for s in target_specs):
                    return candidate
            return None

        # Prefer a wide hoist, but never hoist so far that no enclosing loop
        # remains to pipeline over (a prefetch with nothing ahead of it is
        # just a check-out that returns no data).
        loop = None
        for prefetch_mode in (True, False, None):
            if prefetch_mode is None:
                anchor_loc, specs = loc, tuple(indices)
            else:
                anchor_loc, specs, _ = self._hoist(
                    loc, tuple(indices), op.array, for_prefetch=prefetch_mode
                )
            loop = pipeline_loop(anchor_loc, specs)
            if loop is not None:
                break
        if loop is None:
            return  # nothing to pipeline over
        next_var = Bin("+", Local(loop.var), loop.step)
        shifted: list = []
        for spec in specs:
            if isinstance(spec, RangeSpec):
                shifted.append(
                    RangeSpec(
                        lo=subst_local(spec.lo, loop.var, next_var),
                        hi=subst_local(spec.hi, loop.var, next_var),
                        step=spec.step,
                    )
                )
            else:
                shifted.append(subst_local(spec, loop.var, next_var))
        pf_target = AnnotTarget(array=op.array, specs=tuple(shifted))
        key = ("pipeline", id(anchor_loc.stmt), op.annot, target_str(pf_target))
        if key in self._seen:
            return
        self._seen.add(key)
        guard = If(
            cond=Bin("<=", next_var, loop.hi),
            then=[Annot(kind=op.annot, targets=(pf_target,))],
            els=[],
        )
        self._inserts.append(
            _Insert(anchor_loc.block, anchor_loc.stmt, "before", [guard])
        )
        self.stats.prefetches += 1

    # ------------------------------------------------------------------- flush
    def _flush(self) -> None:
        """Apply all collected insertions to the AST."""
        groups: dict[tuple[int, str], _Insert] = {}
        order: list[tuple[int, str]] = []
        for insert in self._inserts:
            key = (id(insert.anchor) if insert.anchor is not None else hash(insert.func),
                   insert.position)
            if key in groups:
                groups[key].stmts.extend(insert.stmts)
            else:
                groups[key] = _Insert(
                    insert.block, insert.anchor, insert.position,
                    list(insert.stmts), insert.func,
                )
                order.append(key)
        for key in order:
            insert = groups[key]
            fresh_pcs(self.program, insert.stmts)
            if insert.position == "start":
                self.program.function(insert.func).body[0:0] = insert.stmts
            elif insert.position == "end":
                self.program.function(insert.func).body.extend(insert.stmts)
            else:
                block = insert.block
                try:
                    at = next(
                        i for i, s in enumerate(block) if s is insert.anchor
                    )
                except StopIteration:
                    raise CachierError("insertion anchor vanished from its block")
                if insert.position == "before":
                    block[at:at] = insert.stmts
                else:
                    block[at + 1 : at + 1] = insert.stmts
