"""Data-race and false-sharing reports.

Beyond inserting annotations, Cachier "informs a programmer of potential
data races and false sharing" (Section 1) so they can add locks or pad data
structures (Section 4.3).  This module renders that report with addresses
resolved to program variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachier.drfs import DrfsInfo
from repro.mem.labels import LabelTable


@dataclass(frozen=True)
class RaceFinding:
    epoch: int
    var: str  # resolved VarRef (or hex address if unlabelled)
    nodes: tuple[int, ...]


@dataclass(frozen=True)
class FalseSharingFinding:
    epoch: int
    block: int
    vars: tuple[str, ...]


@dataclass
class SharingReport:
    races: list[RaceFinding] = field(default_factory=list)
    false_sharing: list[FalseSharingFinding] = field(default_factory=list)

    @classmethod
    def build(
        cls, drfs: dict[int, DrfsInfo], labels: LabelTable
    ) -> "SharingReport":
        report = cls()

        def resolve(addr: int) -> str:
            label = labels.find(addr)
            return str(label.ref_of(addr)) if label else f"{addr:#x}"

        for epoch in sorted(drfs):
            info = drfs[epoch]
            for block in sorted(info.races):
                nodes = tuple(sorted(info.race_nodes.get(block, ())))
                for addr in sorted(info.race_addrs.get(block, {block})):
                    report.races.append(
                        RaceFinding(epoch=epoch, var=resolve(addr), nodes=nodes)
                    )
            for block in sorted(info.false_shared):
                addrs = sorted(info.fs_addrs.get(block, {block}))
                report.false_sharing.append(
                    FalseSharingFinding(
                        epoch=epoch,
                        block=block,
                        vars=tuple(resolve(a) for a in addrs),
                    )
                )
        return report

    # -------------------------------------------------------------- rendering
    def race_vars(self) -> set[str]:
        return {finding.var for finding in self.races}

    def false_sharing_vars(self) -> set[str]:
        return {var for finding in self.false_sharing for var in finding.vars}

    def render(self) -> str:
        lines: list[str] = []
        if self.races:
            lines.append("Potential data races (use locks to serialise):")
            for finding in self.races:
                nodes = ", ".join(str(n) for n in finding.nodes)
                lines.append(
                    f"  epoch {finding.epoch}: {finding.var} "
                    f"(processors {nodes})"
                )
        else:
            lines.append("No potential data races detected.")
        if self.false_sharing:
            lines.append("False sharing (pad the data structures):")
            for finding in self.false_sharing:
                joined = ", ".join(finding.vars)
                lines.append(
                    f"  epoch {finding.epoch}: cache block {finding.block} "
                    f"holds {joined}"
                )
        else:
            lines.append("No false sharing detected.")
        return "\n".join(lines) + "\n"
