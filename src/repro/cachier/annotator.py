"""The Cachier tool: (program, trace) -> annotated program + reports.

Usage::

    cachier = Cachier(program, trace, params_fn=workload.params_for)
    result = cachier.annotate(Policy.PERFORMANCE, prefetch=True)
    print(unparse_program(result.program))
    print(result.report.render())

``program`` must be the numbered, *unannotated* program the trace was
collected from: trace pcs are resolved against its statements.  The returned
program is an annotated clone; the input is never mutated (Section 3.4: "the
annotated target program is the same as the unannotated target program,
except for the CICO annotations inserted by Cachier").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.cachier.drfs import detect_all
from repro.cachier.epochs import EpochTable
from repro.cachier.mapping import ParamEnv
from repro.cachier.placement import Plan, Planner, merge_static_epochs
from repro.cachier.presentation import PresentationStats, Presenter
from repro.cachier.reports import SharingReport
from repro.errors import CachierError
from repro.lang.ast import Program
from repro.lang.transform import clone_program
from repro.mem.labels import LabelTable
from repro.trace.records import Trace


class Policy(enum.Enum):
    PROGRAMMER = "programmer"
    PERFORMANCE = "performance"


@dataclass
class CachierResult:
    program: Program  # annotated clone
    report: SharingReport
    stats: PresentationStats
    plan: Plan
    policy: Policy


class Cachier:
    def __init__(
        self,
        program: Program,
        trace: Trace,
        params_fn: Callable[[int], dict] | None = None,
        cache_size: int = 256 * 1024,
        capacity_fraction: float = 0.8,
        fs_requires_write: bool = True,
        max_hoist_levels: int = 1,
    ):
        if program.max_pc < 0:
            raise CachierError("program must be numbered (use number_program)")
        if trace.num_nodes <= 0:
            raise CachierError("trace does not record the node count")
        self.program = program
        self.trace = trace
        self.labels: LabelTable = trace.label_table()
        if not self.labels.names():
            raise CachierError(
                "trace carries no labelled regions; label all important "
                "shared data structures (Section 4.3)"
            )
        self.env = ParamEnv(params_fn or (lambda n: {}), trace.num_nodes)
        self.cache_size = cache_size
        self.capacity_fraction = capacity_fraction
        self.max_hoist_levels = max_hoist_levels
        # Phase 1 (shared by both policies): trace processing + DRFS.
        self.table = EpochTable(trace)
        self.drfs = detect_all(
            self.table, trace.block_size, require_write=fs_requires_write
        )
        self.report = SharingReport.build(self.drfs, self.labels)

    def _last_ref(self, key: tuple[int, int], array: str) -> int | None:
        """Last statement in the static epoch region referencing ``array``
        (static information: trace records only first misses, so the last
        *use* of a block is invisible to it — Section 4.3's reason for
        combining static analysis with the trace)."""
        from repro.cachier.presentation import find_array_ref
        from repro.lang.cfg import build_cfg

        regions = getattr(self, "_regions", None)
        if regions is None:
            regions = self._regions = build_cfg(self.program).epoch_regions()
            self._region_ref_cache = {}
        cache_key = (key, array)
        if cache_key in self._region_ref_cache:
            return self._region_ref_cache[cache_key]
        last = None
        from repro.lang.loops import StmtIndex

        index = getattr(self, "_stmt_index", None)
        if index is None:
            index = self._stmt_index = StmtIndex(self.program)
        for pc in sorted(regions.get(key, ()), reverse=True):
            if pc in index and find_array_ref(index.locate(pc).stmt, array):
                last = pc
                break
        self._region_ref_cache[cache_key] = last
        return last

    def _pinned_site(self, pc: int, array: str) -> bool:
        """True when ``array``'s index expressions at statement ``pc`` use
        locals other than loop induction variables (indirect indexing), so a
        near annotation there can never hoist out of its loop."""
        from repro.cachier.presentation import find_array_ref
        from repro.lang.loops import StmtIndex, expr_locals

        index = getattr(self, "_stmt_index", None)
        if index is None:
            index = self._stmt_index = StmtIndex(self.program)
        if pc not in index:
            return False
        loc = index.locate(pc)
        indices = find_array_ref(loc.stmt, array)
        if indices is None:
            return False
        loop_vars = {loop.var for loop in loc.loops}
        return any(expr_locals(e) - loop_vars for e in indices)

    # ---------------------------------------------------------------- annotate
    def annotate(
        self,
        policy: Policy = Policy.PERFORMANCE,
        prefetch: bool = False,
        history: int = 1,
    ) -> CachierResult:
        """Produce an annotated clone.

        ``history`` is the epoch-history depth of the Section 4.1 equations
        (the paper uses a single epoch; deeper history is the DESIGN.md
        ablation)."""
        statics = merge_static_epochs(
            self.trace, self.table, self.drfs, policy.value, history=history
        )
        planner = Planner(
            labels=self.labels,
            env=self.env,
            entry=self.program.entry,
            cache_size=self.cache_size,
            capacity_fraction=self.capacity_fraction,
            policy=policy.value,
            block_size=self.trace.block_size,
            pinned_site=self._pinned_site,
            last_ref=self._last_ref,
        )
        plan = planner.plan(statics, prefetch=prefetch)
        clone = clone_program(self.program)
        presenter = Presenter(
            program=clone,
            labels=self.labels,
            env=self.env,
            budget=int(self.cache_size * self.capacity_fraction),
            prefetch=prefetch,
            max_hoist_levels=self.max_hoist_levels,
        )
        stats = presenter.apply(plan)
        from repro.lang.simplify import simplify_annotations

        simplify_annotations(clone)
        return CachierResult(
            program=clone,
            report=self.report,
            stats=stats,
            plan=plan,
            policy=policy,
        )

    def apply_plan(
        self, program: Program, plan, prefetch: bool = False
    ) -> Program:
        """Apply an existing plan to *another* build of the same program.

        Used by the input-sensitivity experiment (Section 4.5): annotations
        derived from one input data set are applied to the program built for
        a different data set.  The two programs must share the same
        statement structure (identical pcs) and shared-array layout."""
        clone = clone_program(program)
        presenter = Presenter(
            program=clone,
            labels=self.labels,
            env=self.env,
            budget=int(self.cache_size * self.capacity_fraction),
            prefetch=prefetch,
            max_hoist_levels=self.max_hoist_levels,
        )
        presenter.apply(plan)
        return clone
