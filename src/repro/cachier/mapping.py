"""Address -> program-variable mapping and annotation-target symbolization.

Two jobs (paper Section 4.3):

* resolve raw trace addresses to labelled array elements (via the trace's
  labelled-region table), and
* express per-node *sets* of elements as a single symbolic annotation target
  — ``U[Lip:Uip, Ljp:Ujp]`` rather than 32 different constant ranges — by
  matching each node's concrete bounds against that node's parameter
  environment.  The parameter environment is static information: it is the
  same per-node binding the SPMD program runs with.

Symbolization can fail (scattered sets, non-rectangular footprints, no
matching parameter): the caller then falls back to near-reference placement,
which is also what the paper does for pointer-based programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import CachierError
from repro.lang.ast import AnnotTarget, Const, Expr, Param, RangeSpec
from repro.mem.labels import ArrayLabel
from repro.util.intervals import as_progression


class ParamEnv:
    """Per-node parameter bindings (the SPMD environment)."""

    def __init__(self, params_fn: Callable[[int], dict], num_nodes: int):
        if num_nodes <= 0:
            raise CachierError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.per_node: dict[int, dict[str, float]] = {}
        for node in range(num_nodes):
            env = {"me": node}
            env.update(params_fn(node))
            self.per_node[node] = env

    def value(self, node: int, name: str) -> float:
        try:
            env = self.per_node[node]
        except KeyError:
            raise CachierError(
                f"no parameter environment for node {node} "
                f"(have nodes 0..{self.num_nodes - 1})"
            ) from None
        try:
            return env[name]
        except KeyError:
            raise CachierError(
                f"node {node} has no parameter {name!r} "
                f"(available: {sorted(env)})"
            ) from None

    def eval_expr(self, node: int, expr: Expr) -> int | None:
        """Evaluate a Const/Param(+-Const) expression for one node."""
        from repro.lang.ast import Bin

        if isinstance(expr, Const):
            return int(expr.value)
        if isinstance(expr, Param):
            value = self.per_node[node].get(expr.name)
            return None if value is None else int(value)
        if isinstance(expr, Bin) and expr.op in ("+", "-"):
            left = self.eval_expr(node, expr.left)
            right = self.eval_expr(node, expr.right)
            if left is None or right is None:
                return None
            return left + right if expr.op == "+" else left - right
        return None

    # ------------------------------------------------------------- matching
    def match_values(self, values: dict[int, int]) -> Expr | None:
        """An expression equal to ``values[node]`` on every given node.

        Preference order: a constant (all equal), an exact parameter, then
        ``param + 1`` / ``param - 1`` (for inclusive/exclusive bound shifts).
        """
        if not values:
            return None
        distinct = set(values.values())
        if len(distinct) == 1:
            return Const(next(iter(distinct)))
        candidates = sorted(
            {
                name
                for node in values
                for name in self.per_node[node]
            }
        )
        from repro.lang.ast import Bin

        for name in candidates:
            if all(
                self.per_node[node].get(name) == value
                for node, value in values.items()
            ):
                return Param(name)
        for name in candidates:
            if all(
                self.per_node[node].get(name, None) is not None
                and self.per_node[node][name] + 1 == value
                for node, value in values.items()
            ):
                return Bin("+", Param(name), Const(1))
            if all(
                self.per_node[node].get(name, None) is not None
                and self.per_node[node][name] - 1 == value
                for node, value in values.items()
            ):
                return Bin("-", Param(name), Const(1))
        return None


@dataclass(frozen=True)
class SymbolizedTarget:
    target: AnnotTarget
    #: bytes covered per node (max over nodes) — for the capacity check
    max_bytes: int


def symbolize(
    label: ArrayLabel,
    per_node_flats: dict[int, set[int]],
    env: ParamEnv,
) -> SymbolizedTarget | None:
    """Express per-node flat-index sets as one symbolic AnnotTarget.

    Requires every participating node's footprint to be a *rectangle* (the
    cartesian product of a per-dimension arithmetic progression), with each
    dimension's bounds either equal across nodes or matched by a parameter.
    """
    participating = {n: f for n, f in per_node_flats.items() if f}
    if not participating:
        return None
    ndim = len(label.shape)
    # Per node, per dim: sorted value sets; plus rectangularity check.
    per_dim_progs: list[dict[int, tuple[int, int, int]]] = [
        {} for _ in range(ndim)
    ]
    max_elems = 0
    for node, flats in participating.items():
        tuples = [label.unflatten(f) for f in flats]
        dims = [sorted({t[d] for t in tuples}) for d in range(ndim)]
        size = 1
        for vals in dims:
            size *= len(vals)
        if size != len(set(tuples)):
            return None  # not rectangular
        max_elems = max(max_elems, size)
        for d in range(ndim):
            prog = as_progression(dims[d])
            if prog is None:
                return None
            per_dim_progs[d][node] = prog
    specs: list[object] = []
    for d in range(ndim):
        progs = per_dim_progs[d]
        steps = {step for (_, _, step) in progs.values()}
        if len(steps) != 1:
            return None
        step = steps.pop()
        los = {node: lo for node, (lo, _, _) in progs.items()}
        # as_progression's stop is (last element + 1): inclusive hi = stop - 1.
        his = {node: hi - 1 for node, (_, hi, _) in progs.items()}
        singleton = all(los[n] == his[n] for n in progs)
        lo_expr = env.match_values(los)
        if lo_expr is None:
            return None
        if singleton:
            specs.append(lo_expr)
            continue
        hi_expr = env.match_values(his)
        if hi_expr is None:
            return None
        specs.append(RangeSpec(lo=lo_expr, hi=hi_expr, step=Const(step)))
    return SymbolizedTarget(
        target=AnnotTarget(array=label.name, specs=tuple(specs)),
        max_bytes=max_elems * label.elem_size,
    )
