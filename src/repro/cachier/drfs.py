"""Data-race and false-sharing detection (the DRFS / FS functions).

Section 4: *"A potential data race exists if two or more processors access
the same address within the same epoch and at least one access is a write.
False sharing results from two or more processors accessing different
addresses in the same cache block."*

Because the trace keeps no ordering inside an epoch, any such overlap is a
*potential* race — exactly what Cachier reports and what forces the
conservative check-out/check-in-immediately placement.

Classification happens over the *raw* element addresses the trace recorded,
but the resulting sets name cache-block base addresses, matching the block
granularity of the annotation equations (a raced element contends for its
whole block, and check-out/check-in operate on blocks anyway).

For false sharing we additionally require (by default) that at least one
access to the block is a write: read-only blocks never ping-pong, so
flagging them would add annotations with no communication behind them.  Pass
``require_write=False`` for the paper's literal definition; the ablation
benchmark compares both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachier.epochs import EpochTable


@dataclass
class DrfsInfo:
    """Per-epoch DRFS classification (block-base granularity)."""

    races: set[int] = field(default_factory=set)  # blocks with a data race
    false_shared: set[int] = field(default_factory=set)  # blocks with FS
    race_nodes: dict[int, set[int]] = field(default_factory=dict)
    #: raw racing element addresses per block (for the report)
    race_addrs: dict[int, set[int]] = field(default_factory=dict)
    #: raw falsely-shared element addresses per block (for the report)
    fs_addrs: dict[int, set[int]] = field(default_factory=dict)

    @property
    def drfs_addrs(self) -> set[int]:
        return self.races | self.false_shared

    # The DRFS / FS set functions of Section 4.1.
    def drfs(self, addrs: set[int]) -> set[int]:
        return addrs & self.drfs_addrs

    def not_drfs(self, addrs: set[int]) -> set[int]:
        return addrs - self.drfs_addrs

    def fs(self, addrs: set[int]) -> set[int]:
        return addrs & self.false_shared

    def not_fs(self, addrs: set[int]) -> set[int]:
        return addrs - self.false_shared


def detect_drfs(
    table: EpochTable,
    epoch: int,
    block_size: int | None = None,
    require_write: bool = True,
) -> DrfsInfo:
    """Classify epoch ``epoch``'s blocks.

    ``block_size`` is accepted for API symmetry but the table's own block
    size governs (the raw map is already grouped by block).
    """
    info = DrfsInfo()
    for base, addr_map in table.raw_in(epoch).items():
        any_write = any(raw.writers for raw in addr_map.values())
        # Data race: one raw address, >= 2 nodes, >= 1 writer.
        for addr, raw in addr_map.items():
            if raw.writers and len(raw.nodes) >= 2:
                info.races.add(base)
                info.race_nodes.setdefault(base, set()).update(raw.nodes)
                info.race_addrs.setdefault(base, set()).add(addr)
        # False sharing: different raw addresses of one block touched by
        # different nodes.
        if len(addr_map) < 2:
            continue
        if require_write and not any_write:
            continue
        addrs = list(addr_map)
        flagged: set[int] = set()
        for addr in addrs:
            mine = addr_map[addr].nodes
            others = set()
            for other in addrs:
                if other != addr:
                    others |= addr_map[other].nodes
            if others - mine or (others and mine - others):
                flagged.add(addr)
        if flagged:
            info.false_shared.add(base)
            info.fs_addrs.setdefault(base, set()).update(flagged)
    return info


def detect_all(
    table: EpochTable, block_size: int | None = None, require_write: bool = True
) -> dict[int, DrfsInfo]:
    return {
        epoch: detect_drfs(table, epoch, block_size, require_write)
        for epoch in range(table.num_epochs)
    }
