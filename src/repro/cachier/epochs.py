"""Per-(epoch, node) access sets from the trace.

Section 4's trace processing: *"removing addresses involved in shared write
faults from the list of shared read misses, updating the list of shared
write misses to include addresses involved in shared write faults"*.
Concretely, for epoch *i* and processor *p*:

* ``SW`` = shared write misses + shared write faults,
* ``SR`` = shared read misses - shared write faults,
* ``S``  = ``SW`` + ``SR``,
* ``WF`` = the write-fault addresses alone (Performance CICO needs them:
  they are the read-then-written locations whose upgrade a ``check_out_X``
  would eliminate).

Granularity: check-out/check-in operate on *cache blocks* ("the cache block
containing a specified address"), and a trace miss record names whichever
element of the block happened to fault first — re-misses on a ping-ponging
block can record several different elements of one block.  The sets above
are therefore canonicalized to **block base addresses**.  The raw element
addresses are retained per block for two consumers that need them:

* DRFS classification — a *data race* is two processors on the same raw
  address, *false sharing* is two processors on different raw addresses of
  the same block (Section 4);
* the programmer-facing sharing report.

PCs are retained per block so the placement stage can find the referencing
statements: ``read_pc`` maps a block address to the pc of its first read
miss, ``write_pc`` to the pc of its first write miss or fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.records import MissKind, Trace


@dataclass
class RawAccess:
    """Who touched one raw element address within an epoch."""

    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)

    @property
    def nodes(self) -> set[int]:
        return self.readers | self.writers


@dataclass
class EpochAccess:
    """One processor's shared accesses within one epoch (block granular)."""

    sw: set[int] = field(default_factory=set)
    sr: set[int] = field(default_factory=set)
    wf: set[int] = field(default_factory=set)
    read_pc: dict[int, int] = field(default_factory=dict)
    write_pc: dict[int, int] = field(default_factory=dict)

    @property
    def s(self) -> set[int]:
        return self.sw | self.sr

    def pc_for(self, addr: int) -> int:
        """Best-known pc referencing ``addr``: prefer the read site (a
        check-out must precede the first read), else the write site."""
        pc = self.read_pc.get(addr)
        if pc is None:
            pc = self.write_pc.get(addr, -1)
        return pc


_EMPTY = EpochAccess()


class EpochTable:
    """All epochs of a trace: ``table[epoch][node] -> EpochAccess``."""

    def __init__(self, trace: Trace, block_size: int | None = None):
        self.trace = trace
        self.block_size = block_size or trace.block_size
        self.num_epochs = trace.num_epochs()
        self._table: dict[int, dict[int, EpochAccess]] = {}
        self._touches: dict[int, list[tuple[int, int]]] | None = None
        #: epoch -> block base -> raw addr -> RawAccess (for DRFS/reports)
        self.raw: dict[int, dict[int, dict[int, RawAccess]]] = {}
        bs = self.block_size
        for rec in trace.misses:
            base = (rec.addr // bs) * bs
            acc = self._table.setdefault(rec.epoch, {}).setdefault(
                rec.node, EpochAccess()
            )
            raw = (
                self.raw.setdefault(rec.epoch, {})
                .setdefault(base, {})
                .setdefault(rec.addr, RawAccess())
            )
            if rec.kind is MissKind.READ_MISS:
                acc.sr.add(base)
                acc.read_pc.setdefault(base, rec.pc)
                raw.readers.add(rec.node)
            elif rec.kind is MissKind.WRITE_MISS:
                acc.sw.add(base)
                acc.write_pc.setdefault(base, rec.pc)
                raw.writers.add(rec.node)
            else:  # WRITE_FAULT
                acc.wf.add(base)
                acc.write_pc.setdefault(base, rec.pc)
                raw.writers.add(rec.node)
        # Write-fault folding: faults join SW and leave SR.
        for per_node in self._table.values():
            for acc in per_node.values():
                acc.sw |= acc.wf
                acc.sr -= acc.sw

    def get(self, epoch: int, node: int) -> EpochAccess:
        """Access sets (empty outside the trace — SW[-1] = S[n] = {})."""
        return self._table.get(epoch, {}).get(node, _EMPTY)

    def nodes_in(self, epoch: int) -> list[int]:
        return sorted(self._table.get(epoch, {}))

    def epochs(self) -> list[int]:
        return sorted(self._table)

    def raw_in(self, epoch: int) -> dict[int, dict[int, RawAccess]]:
        return self.raw.get(epoch, {})

    def sw_any(self, epoch: int) -> set[int]:
        """Union of SW over all processors in ``epoch`` (Performance CICO's
        "will be written by *some* processor in the next epoch")."""
        out: set[int] = set()
        for acc in self._table.get(epoch, {}).values():
            out |= acc.sw
        return out

    def touched_later_by_other(self, epoch: int, node: int, addrs: set[int]) -> set[int]:
        """Subset of ``addrs`` that some processor other than ``node``
        touches in any epoch after ``epoch``.

        A check-in only pays off if another processor will want the block:
        it spares that processor a recall or an invalidation.  Flushing a
        block only its owner ever touches just forces the owner to re-fetch
        it.  The whole trace is available to Cachier, so this is ordinary
        dynamic information."""
        touches = self._touches
        if touches is None:
            touches = {}
            for ep, per_node in self._table.items():
                for nd, acc in per_node.items():
                    for addr in acc.s:
                        touches.setdefault(addr, []).append((ep, nd))
            self._touches = touches
        out: set[int] = set()
        for addr in addrs:
            for ep, nd in touches.get(addr, ()):
                if ep > epoch and nd != node:
                    out.add(addr)
                    break
        return out
