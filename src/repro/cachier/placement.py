"""Annotation placement planning (paper Section 4.2).

Placement rules, as the paper states them:

* **Raced / falsely-shared locations** (both policies): check-out and
  check-in *as close to the reference as possible* — the block will not stay
  in the cache long, so holding it is pointless and harmful.
* **Programmer CICO, plain locations**: check-outs as close to the start of
  the epoch and check-ins as close to its end as the *cache size* permits;
  when the footprint exceeds capacity, annotations are pushed inward to the
  loops containing the references (the Jacobi column case of Section 2.1).
* **Performance CICO**: the only check-outs kept are the exclusive ones that
  pre-empt a read-then-write upgrade, placed at the *read*; check-ins go at
  the end of the epoch (raced ones stay at the reference).

Dynamic epochs are first merged by *static epoch* — the (opening barrier pc,
closing barrier pc) pair — so annotations are not duplicated when an epoch
re-executes (Section 4.3).

The planner emits two kinds of operations:

* :class:`BoundaryOp` — a symbolized target anchored at an epoch boundary,
* :class:`NearOp` — an annotation attached to the referencing statement
  (its concrete target is derived from the statement's own index
  expressions during presentation, where loop hoisting also happens).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachier.drfs import DrfsInfo
from repro.cachier.epochs import EpochTable
from repro.cachier.equations import AnnotationSets, performance_cico, programmer_cico
from repro.cachier.mapping import ParamEnv, symbolize
from repro.errors import CachierError
from repro.lang.ast import AnnotKind, AnnotTarget
from repro.mem.labels import LabelTable
from repro.trace.records import Trace


# ---------------------------------------------------------------- static epochs
@dataclass
class StaticEpoch:
    key: tuple[int, int]  # (opening barrier pc, closing barrier pc)
    dynamic: list[int] = field(default_factory=list)
    per_node: dict[int, AnnotationSets] = field(default_factory=dict)
    races: set[int] = field(default_factory=set)
    false_shared: set[int] = field(default_factory=set)
    read_pc: dict[int, int] = field(default_factory=dict)
    write_pc: dict[int, int] = field(default_factory=dict)
    sw_union: set[int] = field(default_factory=set)  # written by anyone
    s_union: set[int] = field(default_factory=set)  # touched by anyone

    @property
    def drfs_addrs(self) -> set[int]:
        return self.races | self.false_shared

    def pc_for(self, addr: int) -> int:
        pc = self.read_pc.get(addr)
        if pc is None:
            pc = self.write_pc.get(addr, -1)
        return pc

    def last_pc_for(self, addr: int) -> int:
        """Best-known *latest* reference site (for check-in placement)."""
        return max(self.read_pc.get(addr, -1), self.write_pc.get(addr, -1))


def merge_static_epochs(
    trace: Trace,
    table: EpochTable,
    drfs: dict[int, DrfsInfo],
    policy: str,
    history: int = 1,
) -> dict[tuple[int, int], StaticEpoch]:
    """Compute per-dynamic-epoch annotation sets and merge by static epoch.

    An annotation inserted into the source executes on *every* dynamic
    instance of its static epoch, so for re-executed epochs (>= 2 dynamic
    instances) the merged sets take the union of the **steady-state**
    instances — every instance after the first.  Cold-start-only effects
    (e.g. the first iteration's compulsory write faults) would otherwise pin
    a useless annotation into every later iteration.  PCs and DRFS
    classifications still merge over all instances.
    """
    fn = programmer_cico if policy == "programmer" else performance_cico
    statics: dict[tuple[int, int], StaticEpoch] = {}
    instances: dict[tuple[int, int], list[int]] = {}
    for epoch in range(table.num_epochs):
        instances.setdefault(trace.static_epoch_key(epoch), []).append(epoch)
    for key, dynamic in instances.items():
        static = statics.setdefault(key, StaticEpoch(key=key))
        static.dynamic.extend(dynamic)
        merge_from = dynamic if len(dynamic) == 1 else dynamic[1:]
        for epoch in dynamic:
            info = drfs[epoch]
            static.races |= info.races
            static.false_shared |= info.false_shared
            for node in table.nodes_in(epoch):
                acc = table.get(epoch, node)
                static.sw_union |= acc.sw
                static.s_union |= acc.s
                for addr, pc in acc.read_pc.items():
                    static.read_pc.setdefault(addr, pc)
                for addr, pc in acc.write_pc.items():
                    static.write_pc.setdefault(addr, pc)
        for epoch in merge_from:
            for node in table.nodes_in(epoch):
                sets = fn(table, drfs, epoch, node, history=history)
                merged = static.per_node.setdefault(node, AnnotationSets())
                merged.co_x |= sets.co_x
                merged.co_s |= sets.co_s
                merged.ci |= sets.ci
    return statics


# -------------------------------------------------------------------- plan ops
@dataclass(frozen=True)
class Anchor:
    """Where a boundary annotation goes."""

    kind: str  # 'func_start' | 'func_end' | 'after_pc' | 'before_pc'
    where: int | str  # pc, or function name


@dataclass(frozen=True)
class BoundaryOp:
    annot: AnnotKind
    target: AnnotTarget
    anchor: Anchor
    guard_node: int | None = None  # wrap in `if me == guard_node`
    guard_not_node: int | None = None  # wrap in `if me != guard_not_node`


@dataclass(frozen=True)
class NearOp:
    annot: AnnotKind
    array: str
    pc: int  # referencing statement
    position: str  # 'before' | 'after' | 'pipeline'
    drfs: bool = False  # raced/false-shared: no hoisting, add a comment
    comment: str | None = None


@dataclass
class Plan:
    boundary: list[BoundaryOp] = field(default_factory=list)
    near: list[NearOp] = field(default_factory=list)
    prefetch: list[NearOp] = field(default_factory=list)  # position='pipeline'
    warnings: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------- planner
class Planner:
    def __init__(
        self,
        labels: LabelTable,
        env: ParamEnv,
        entry: str,
        cache_size: int,
        capacity_fraction: float = 0.8,
        policy: str = "programmer",
        block_size: int = 32,
        pinned_site=None,
        last_ref=None,
    ):
        if policy not in ("programmer", "performance"):
            raise CachierError(f"unknown policy {policy!r}")
        self.labels = labels
        self.env = env
        self.entry = entry
        self.budget = int(cache_size * capacity_fraction)
        self.policy = policy
        self.block_size = block_size
        #: callable (pc, array) -> bool: True when the reference site's index
        #: expressions use locals other than loop induction variables, so a
        #: near annotation there could never hoist out of its write loop.
        self.pinned_site = pinned_site or (lambda pc, array: False)
        #: callable (epoch_key, array) -> pc | None: the *last* statement in
        #: the static epoch region referencing the array.  This is static
        #: information the trace cannot provide (hits are invisible to it),
        #: used to push check-ins past every later reference (Section 4.3).
        self.last_ref = last_ref or (lambda key, array: None)

    def _block_flats(self, label, base: int) -> set[int]:
        """Element flat indices of the block at ``base`` within ``label``.

        Trace sets are block-granular; an annotation target must name the
        *elements* the block holds (clipped to the labelled span)."""
        first = max(base, label.region.base)
        last = min(base + self.block_size, label.region.base
                   + label.num_elements * label.elem_size)
        lo = (first - label.region.base) // label.elem_size
        hi = (last - label.region.base + label.elem_size - 1) // label.elem_size
        return set(range(lo, min(hi, label.num_elements)))

    # ------------------------------------------------------------------ plan
    def plan(
        self,
        statics: dict[tuple[int, int], StaticEpoch],
        prefetch: bool = False,
    ) -> Plan:
        plan = Plan()
        for key in sorted(statics):
            self._plan_epoch(plan, statics[key])
            if prefetch:
                self._plan_prefetch(plan, statics[key])
        self._dedupe(plan)
        return plan

    def _plan_prefetch(self, plan: Plan, epoch: StaticEpoch) -> None:
        """Pipelined prefetch sites: every missing block's reference site
        gets a next-iteration prefetch (exclusive if anyone writes the
        block).  Presentation discards sites whose addresses are not
        statically analyzable — pointer-chasing programs keep few of these
        (the paper's Barnes observation)."""
        sites: dict[tuple[str, int, AnnotKind], None] = {}
        for addr in epoch.s_union:
            label = self.labels.find(addr)
            if label is None:
                continue
            pc = epoch.pc_for(addr)
            if pc < 0:
                continue
            kind = (
                AnnotKind.PREFETCH_X
                if addr in epoch.sw_union
                else AnnotKind.PREFETCH_S
            )
            sites.setdefault((label.name, pc, kind), None)
        for array, pc, kind in sites:
            plan.prefetch.append(
                NearOp(annot=kind, array=array, pc=pc, position="pipeline")
            )

    def _plan_epoch(self, plan: Plan, epoch: StaticEpoch) -> None:
        open_anchor = (
            Anchor("func_start", self.entry)
            if epoch.key[0] < 0
            else Anchor("after_pc", epoch.key[0])
        )
        close_anchor = (
            Anchor("func_end", self.entry)
            if epoch.key[1] < 0
            else Anchor("before_pc", epoch.key[1])
        )
        drfs_addrs = epoch.drfs_addrs
        num_nodes = self.env.num_nodes

        # ---- DRFS addresses: near-reference, flagged -----------------------
        for kind, select in (
            (AnnotKind.CHECK_OUT_X, lambda s: s.co_x),
            (AnnotKind.CHECK_OUT_S, lambda s: s.co_s),
            (AnnotKind.CHECK_IN, lambda s: s.ci),
        ):
            addrs = set()
            for sets in epoch.per_node.values():
                addrs |= select(sets) & drfs_addrs
            position = "after" if kind is AnnotKind.CHECK_IN else "before"
            for addr in addrs:
                label = self.labels.find(addr)
                if label is None:
                    plan.warnings.append(f"unlabelled address {addr:#x} skipped")
                    continue
                pc = epoch.pc_for(addr)
                if pc < 0:
                    plan.warnings.append(f"no pc for address {addr:#x}")
                    continue
                comment = None
                if kind is not AnnotKind.CHECK_IN:
                    comment = (
                        "Data Race on" if addr in epoch.races else "False Sharing on"
                    )
                plan.near.append(
                    NearOp(
                        annot=kind,
                        array=label.name,
                        pc=pc,
                        position=position,
                        drfs=True,
                        comment=comment,
                    )
                )

        # ---- plain addresses: per array, joint co/ci mode decision ---------
        per_array: dict[str, dict[str, dict[int, set[int]]]] = {}
        for node, sets in epoch.per_node.items():
            for kind_name, addrs in (
                ("co_x", sets.co_x - drfs_addrs),
                ("co_s", sets.co_s - drfs_addrs),
                ("ci", sets.ci - drfs_addrs),
            ):
                for addr in addrs:
                    label = self.labels.find(addr)
                    if label is None:
                        plan.warnings.append(f"unlabelled address {addr:#x} skipped")
                        continue
                    per_array.setdefault(label.name, {}).setdefault(
                        kind_name, {}
                    ).setdefault(node, set()).add(addr)

        for array in sorted(per_array):
            groups = per_array[array]
            label = self.labels.get(array)
            boundary_ok = True
            symbolized: dict[str, object] = {}
            participants: set[int] = set()
            for kind_name, per_node in groups.items():
                participants |= set(per_node)
                if self.policy == "performance" and kind_name == "co_x":
                    continue  # performance co_x is always near the read
                flats = {
                    node: set().union(
                        *(self._block_flats(label, addr) for addr in addrs)
                    )
                    for node, addrs in per_node.items()
                }
                sym = symbolize(label, flats, self.env)
                symbolized[kind_name] = sym
                if sym is None or sym.max_bytes > self.budget:
                    boundary_ok = False
            guard: int | None = None
            guard_not: int | None = None
            if len(participants) == 1:
                guard = next(iter(participants))
            elif len(participants) == num_nodes - 1:
                # Everyone except one node (typically the producer, whose
                # copies are hits and invisible to the trace): guard the
                # annotation with `me != missing`.
                guard_not = next(
                    iter(set(range(num_nodes)) - participants)
                )
            elif boundary_ok and len(participants) != num_nodes:
                boundary_ok = False  # scattered participation: go near

            if boundary_ok:
                for kind_name, sym in symbolized.items():
                    if kind_name == "ci":
                        plan.boundary.append(
                            BoundaryOp(AnnotKind.CHECK_IN, sym.target,
                                       close_anchor, guard, guard_not)
                        )
                    else:
                        annot = (
                            AnnotKind.CHECK_OUT_X
                            if kind_name == "co_x"
                            else AnnotKind.CHECK_OUT_S
                        )
                        plan.boundary.append(
                            BoundaryOp(annot, sym.target, open_anchor, guard,
                                       guard_not)
                        )
                if self.policy == "performance" and "co_x" in groups:
                    self._near_co_x(plan, epoch, array, groups["co_x"])
                continue

            # ---- near-reference fallback for every kind of this array ------
            if "co_x" in groups:
                self._near_co_x(plan, epoch, array, groups["co_x"])
            if "co_s" in groups:
                self._near_group(
                    plan, epoch, array, groups["co_s"], AnnotKind.CHECK_OUT_S,
                    "before", use_last=False,
                )
            if "ci" in groups:
                # A check-in whose reference sites are *pinned* (indirect
                # indices: the annotation could never hoist out of the loop
                # that rewrites the block) would churn — flush after every
                # element and re-miss on the next.  If the set symbolizes,
                # place it at the epoch boundary instead; unlike a
                # check-out, a check-in holds nothing, so the capacity
                # budget does not apply (already-evicted blocks make it a
                # cheap no-op).
                sym = symbolized.get("ci")
                pcs_pinned = sym is not None and all(
                    self.pinned_site(epoch.last_pc_for(addr), array)
                    for addrs in groups["ci"].values()
                    for addr in addrs
                ) and (guard is not None or guard_not is not None
                       or len(participants) == num_nodes)
                if pcs_pinned:
                    plan.boundary.append(
                        BoundaryOp(AnnotKind.CHECK_IN, sym.target,
                                   close_anchor, guard, guard_not)
                    )
                else:
                    self._near_group(
                        plan, epoch, array, groups["ci"], AnnotKind.CHECK_IN,
                        "after", use_last=True,
                    )

    def _near_co_x(
        self,
        plan: Plan,
        epoch: StaticEpoch,
        array: str,
        per_node: dict[int, set[int]],
    ) -> None:
        # check_out_X anchors at the statement that *writes* the block: in
        # the common read-modify-write statement the exclusive copy is in
        # hand before the statement's own reads, which is what kills the
        # upgrade fault.  First-read pcs are unreliable anchors — a block's
        # first reader is often a *neighbouring* iteration's stencil load
        # whose index expressions point one element off.
        self._near_group(
            plan, epoch, array, per_node, AnnotKind.CHECK_OUT_X, "before",
            use_last=False, prefer_write=True,
        )

    def _near_group(
        self,
        plan: Plan,
        epoch: StaticEpoch,
        array: str,
        per_node: dict[int, set[int]],
        kind: AnnotKind,
        position: str,
        use_last: bool,
        prefer_write: bool = False,
    ) -> None:
        pcs: set[int] = set()
        for addrs in per_node.values():
            for addr in addrs:
                if use_last:
                    pc = epoch.last_pc_for(addr)
                elif prefer_write:
                    pc = epoch.write_pc.get(addr, epoch.pc_for(addr))
                else:
                    pc = epoch.pc_for(addr)
                if pc >= 0:
                    pcs.add(pc)
                else:
                    plan.warnings.append(f"no pc for address {addr:#x}")
        if use_last and len(pcs) == 1:
            # Static supplement (Section 4.3): the trace only records first
            # misses, so a block re-used by a *later* statement looks
            # single-use.  When every address anchors at one site, and the
            # AST shows a later reference to the same array inside this
            # epoch, push the check-in past it.  (With multiple sites the
            # targets must stay with their own statements for coverage.)
            static_last = self.last_ref(epoch.key, array)
            if static_last is not None and static_last > next(iter(pcs)):
                pcs = {static_last}
        for pc in sorted(pcs):
            plan.near.append(
                NearOp(annot=kind, array=array, pc=pc, position=position)
            )

    @staticmethod
    def _dedupe(plan: Plan) -> None:
        # DRFS ops win over plain ops for the same (kind, array, site): a
        # partially-raced address set keeps the conservative placement.
        seen: set = set()
        near: list[NearOp] = []
        for op in sorted(plan.near, key=lambda op: (not op.drfs, op.pc)):
            key = (op.annot, op.array, op.pc, op.position)
            if key not in seen:
                seen.add(key)
                near.append(op)
        plan.near = near
        seen.clear()
        boundary: list[BoundaryOp] = []
        for op in plan.boundary:
            if op not in seen:
                seen.add(op)
                boundary.append(op)
        plan.boundary = boundary
