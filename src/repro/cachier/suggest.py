"""Actionable restructuring suggestions from the sharing report.

Section 4.3: *"Cachier also flags data races and false sharing, to enable
the programmer to use locks in the case of data races or pad the relevant
data structures in the case of false sharing, to alleviate the problem."*
Section 5 then walks through exactly such a restructuring.

This module turns the raw findings into the concrete advice the paper
describes: which arrays to pad (and to what element multiple), which arrays
need locks or privatized accumulation, and — when the racing traffic
dominates, as in the Section 4.4 multiply — an explicit
copy-locally / merge-under-lock restructuring suggestion with the expected
check-out reduction computed from the CICO cost model.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

from repro.cachier.reports import SharingReport


@dataclass(frozen=True)
class Suggestion:
    kind: str  # 'pad' | 'lock' | 'privatize'
    array: str
    detail: str
    weight: int  # how many findings back this suggestion


@dataclass
class Advice:
    suggestions: list[Suggestion] = field(default_factory=list)

    def for_array(self, array: str) -> list[Suggestion]:
        return [s for s in self.suggestions if s.array == array]

    def render(self) -> str:
        if not self.suggestions:
            return "No restructuring needed: no races or false sharing.\n"
        lines = ["Restructuring suggestions (most impactful first):"]
        for s in self.suggestions:
            lines.append(f"  [{s.kind}] {s.array}: {s.detail}")
        return "\n".join(lines) + "\n"


_ARRAY = re.compile(r"^([A-Za-z_]\w*)\[")


def _array_of(var: str) -> str | None:
    match = _ARRAY.match(var)
    return match.group(1) if match else None


def advise(
    report: SharingReport,
    block_elems: int = 4,
    privatize_threshold: int = 8,
) -> Advice:
    """Derive suggestions from a :class:`SharingReport`.

    ``block_elems`` is the number of array elements per cache block (the
    padding target).  Arrays with at least ``privatize_threshold`` raced
    elements get the full Section 5 treatment (privatize + locked merge);
    fewer races get a plain lock suggestion.
    """
    race_counts: Counter[str] = Counter()
    for finding in report.races:
        array = _array_of(finding.var)
        if array:
            race_counts[array] += 1
    fs_counts: Counter[str] = Counter()
    for finding in report.false_sharing:
        for var in finding.vars:
            array = _array_of(var)
            if array:
                fs_counts[array] += 1

    advice = Advice()
    for array, count in race_counts.most_common():
        if count >= privatize_threshold:
            advice.suggestions.append(
                Suggestion(
                    kind="privatize",
                    array=array,
                    weight=count,
                    detail=(
                        f"{count} raced elements: accumulate into a private "
                        f"copy and merge back under a per-block lock "
                        f"(the Section 5 restructuring; cuts the racing "
                        f"check-outs by ~{block_elems}x and makes the "
                        f"result deterministic)"
                    ),
                )
            )
        else:
            advice.suggestions.append(
                Suggestion(
                    kind="lock",
                    array=array,
                    weight=count,
                    detail=(
                        f"{count} raced element(s): guard updates with a "
                        f"lock (timing-dependent results otherwise)"
                    ),
                )
            )
    for array, count in fs_counts.most_common():
        if array in race_counts:
            continue  # the race advice dominates
        advice.suggestions.append(
            Suggestion(
                kind="pad",
                array=array,
                weight=count,
                detail=(
                    f"{count} falsely-shared element(s): pad or align the "
                    f"per-processor partition to a multiple of "
                    f"{block_elems} elements (one cache block) so "
                    f"processors stop contending for blocks they do not "
                    f"share"
                ),
            )
        )
    advice.suggestions.sort(key=lambda s: -s.weight)
    return advice
