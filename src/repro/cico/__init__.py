"""The CICO programming performance model (paper Section 2)."""

from repro.cico.annotations import AnnotKind, annotation_overhead_cycles
from repro.cico.report import CostReport, SiteEstimate, estimate_costs
from repro.cico.cost_model import (
    CicoCostModel,
    jacobi_checkouts_cache_fits,
    jacobi_checkouts_column_fits,
    matmul_original_c_checkouts,
    matmul_restructured_c_checkouts,
    matmul_restructured_raced_checkouts,
)

__all__ = [
    "AnnotKind",
    "annotation_overhead_cycles",
    "CicoCostModel",
    "CostReport",
    "SiteEstimate",
    "estimate_costs",
    "jacobi_checkouts_cache_fits",
    "jacobi_checkouts_column_fits",
    "matmul_original_c_checkouts",
    "matmul_restructured_c_checkouts",
    "matmul_restructured_raced_checkouts",
]
