"""The CICO analytic cost model (paper Section 2.1).

CICO attributes a program's communication cost to its annotations by
counting checked-out cache blocks.  Section 2.1 derives closed forms for
Jacobi relaxation on an N x N matrix over P^2 processors with b elements per
cache block:

* if each processor's block of the matrix fits in its cache, the matrix is
  checked out once and only boundary rows/columns move every time step::

      total = 2*N*P*T*(1+b)/b + N^2/b

* if only individual columns fit, the matrix is re-checked-out every step::

      total = (2*N*P*(1+b)/b + N^2/b) * T

Section 5 counts check-outs for the racing matrix multiply: the original
program checks out C's elements N^3 times (all racing); the restructured one
only N^2*P/2 times, of which N^2*P/4 race (and those are lock-protected).

These functions are the ground truth the E2/E6 benchmarks compare simulated
check-out counts against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coherence.costs import CostModel
from repro.errors import ReproError


def _check(N: int, P: int, b: int) -> None:
    if P <= 0 or N <= 0 or b <= 0:
        raise ReproError(f"bad Jacobi parameters N={N} P={P} b={b}")
    if N % P:
        raise ReproError(f"N={N} must be a multiple of P={P}")


def jacobi_checkouts_cache_fits(N: int, P: int, b: int, T: int) -> float:
    """Total blocks checked out by all P^2 processors over T steps when each
    processor's matrix block fits in cache: ``2NPT(1+b)/b + N^2/b``."""
    _check(N, P, b)
    return 2 * N * P * T * (1 + b) / b + N * N / b


def jacobi_checkouts_column_fits(N: int, P: int, b: int, T: int) -> float:
    """Total when only individual columns fit: ``(2NP(1+b)/b + N^2/b) * T``."""
    _check(N, P, b)
    return (2 * N * P * (1 + b) / b + N * N / b) * T


def jacobi_boundary_checkouts_per_step(N: int, P: int, b: int) -> float:
    """Boundary rows+columns checked out per processor per time step:
    ``2N(1+b)/(bP)`` (2N/bP column blocks + 2N/P row blocks)."""
    _check(N, P, b)
    return 2 * N * (1 + b) / (b * P)


def matmul_original_c_checkouts(N: int) -> int:
    """Original Section 4.4 algorithm: ``N * N/P * N/P * P^2 = N^3`` racing
    check-outs of C elements across all processors."""
    return N ** 3


def matmul_restructured_c_checkouts(N: int, P: int) -> float:
    """Restructured Section 5 version: ``2 * N * N/(4P) * P^2 = N^2 P / 2``
    (each processor copies its C block out and back, 4 elements per block)."""
    return N * N * P / 2


def matmul_restructured_raced_checkouts(N: int, P: int) -> float:
    """Of those, only the copy-back half races (lock-protected): N^2 P / 4."""
    return N * N * P / 4


@dataclass(frozen=True, slots=True)
class CicoCostModel:
    """Attribute communication cost to annotation counts.

    The CICO cost model charges each checked-out block a transfer cost and
    each annotation an issue overhead; this mirrors the paper's "measure of
    the communication incurred by non-local data references as well as the
    cache-coherence protocol overhead"."""

    cost: CostModel = CostModel()

    def checkout_cost(self, blocks: int, remote_fraction: float = 1.0) -> float:
        """Cycles attributed to ``blocks`` check-outs, ``remote_fraction`` of
        which transfer data across the network."""
        if not 0.0 <= remote_fraction <= 1.0:
            raise ReproError(f"bad remote_fraction {remote_fraction}")
        per_block = (
            self.cost.directive_cycles
            + remote_fraction * self.cost.miss_from_memory()
        )
        return blocks * per_block

    def checkin_cost(self, blocks: int) -> float:
        return blocks * self.cost.directive_cycles

    def program_cost(self, checkouts: int, checkins: int,
                     remote_fraction: float = 1.0) -> float:
        return self.checkout_cost(checkouts, remote_fraction) + self.checkin_cost(
            checkins
        )
