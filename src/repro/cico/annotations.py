"""CICO annotation vocabulary.

The model consists of five annotations (Section 1): ``check_out_X``
(exclusive), ``check_out_S`` (shared), ``check_in``, ``prefetch_X`` and
``prefetch_S``.  They never affect program semantics — only performance —
which is what licenses Cachier's aggressive, trace-driven insertion.

The IR-level enum lives in :mod:`repro.lang.ast`; it is re-exported here so
model-level code can speak CICO without importing the language.
"""

from __future__ import annotations

from repro.coherence.costs import CostModel
from repro.lang.ast import AnnotKind

__all__ = ["AnnotKind", "annotation_overhead_cycles"]


def annotation_overhead_cycles(count: int, cost: CostModel | None = None) -> int:
    """Issue overhead of ``count`` executed annotations.

    Under Dir1SW an annotation that does not change any coherence state still
    costs its address-generation/translation overhead — the reason
    Performance CICO drops redundant ``check_out_S`` annotations entirely
    (Section 4.4)."""
    cost = cost or CostModel()
    return count * cost.directive_cycles
