"""Static CICO cost reports.

Section 2's promise is that a programmer can *compute* a program's
communication cost from its annotations — the Jacobi example does it with
pencil and paper.  This module mechanizes that arithmetic for any annotated
IR program: walk the AST, count how often each annotation executes (loop
trip counts from the per-node parameter environment), expand each target to
cache blocks, and attribute cycles with the CICO cost model.

The estimate is exact whenever loop bounds and annotation targets are
evaluable from parameters and constants (true for every regular workload
here); data-dependent sites (indirect indices, unevaluable guards) are
counted at one block per execution and flagged in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cico.cost_model import CicoCostModel
from repro.errors import ReproError
from repro.lang.ast import (
    Annot,
    AnnotKind,
    Bin,
    Const,
    Expr,
    For,
    Function,
    If,
    Local,
    Param,
    Program,
    RangeSpec,
    Stmt,
    child_blocks,
)


@dataclass
class SiteEstimate:
    """Cost estimate for one annotation statement, for one node."""

    kind: AnnotKind
    target: str
    pc: int
    executions: int  # times the statement runs on this node
    blocks_per_execution: int
    exact: bool  # False when something was not statically evaluable

    @property
    def block_ops(self) -> int:
        return self.executions * self.blocks_per_execution


@dataclass
class CostReport:
    """Per-node annotation census plus machine-wide totals."""

    per_node: dict[int, list[SiteEstimate]] = field(default_factory=dict)
    block_size: int = 32

    def totals(self, kind: AnnotKind | None = None) -> int:
        """Total block operations across all nodes (optionally one kind)."""
        return sum(
            est.block_ops
            for sites in self.per_node.values()
            for est in sites
            if kind is None or est.kind is kind
        )

    def checkouts(self) -> int:
        return self.totals(AnnotKind.CHECK_OUT_S) + self.totals(
            AnnotKind.CHECK_OUT_X
        )

    def checkins(self) -> int:
        return self.totals(AnnotKind.CHECK_IN)

    def prefetches(self) -> int:
        return self.totals(AnnotKind.PREFETCH_S) + self.totals(
            AnnotKind.PREFETCH_X
        )

    def all_exact(self) -> bool:
        return all(
            est.exact for sites in self.per_node.values() for est in sites
        )

    def attributed_cycles(self, model: CicoCostModel | None = None,
                          remote_fraction: float = 1.0) -> float:
        model = model or CicoCostModel()
        return model.program_cost(
            self.checkouts(), self.checkins(), remote_fraction
        ) + self.prefetches() * model.cost.directive_cycles

    def render(self) -> str:
        from repro.harness.reporting import render_table

        rows = []
        for node in sorted(self.per_node):
            for est in self.per_node[node]:
                rows.append([
                    node, est.kind.value, est.target, est.executions,
                    est.blocks_per_execution, est.block_ops,
                    "exact" if est.exact else "~lower bound",
                ])
        table = render_table(
            ["node", "annotation", "target", "execs", "blocks", "block-ops",
             "confidence"],
            rows,
            title="CICO static cost report",
        )
        return (
            table
            + f"total check-outs: {self.checkouts()}   "
            + f"check-ins: {self.checkins()}   "
            + f"prefetches: {self.prefetches()}\n"
        )


class _Evaluator:
    """Evaluate Const/Param/loop-constant expressions for one node."""

    def __init__(self, params: dict[str, float]):
        self.params = params
        self.loop_values: dict[str, int | None] = {}

    def eval(self, expr: Expr) -> int | None:
        t = type(expr)
        if t is Const:
            value = expr.value
            return int(value) if float(value).is_integer() else None
        if t is Param:
            value = self.params.get(expr.name)
            return None if value is None else int(value)
        if t is Local:
            return self.loop_values.get(expr.name)
        if t is Bin:
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            if left is None or right is None:
                return None
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if expr.op == "//":
                    return left // right
                if expr.op == "%":
                    return left % right
                if expr.op == "==":
                    return int(left == right)
                if expr.op == "!=":
                    return int(left != right)
                if expr.op == "<":
                    return int(left < right)
                if expr.op == "<=":
                    return int(left <= right)
                if expr.op == ">":
                    return int(left > right)
                if expr.op == ">=":
                    return int(left >= right)
                if expr.op == "and":
                    return int(bool(left and right))
                if expr.op == "or":
                    return int(bool(left or right))
            except ZeroDivisionError:
                return None
        return None


def estimate_costs(
    program: Program,
    params_fn: Callable[[int], dict],
    num_nodes: int,
    block_size: int = 32,
    elem_size: int = 8,
) -> CostReport:
    """Static annotation census for every node of an SPMD program."""
    if num_nodes <= 0:
        raise ReproError(f"num_nodes must be positive, got {num_nodes}")
    report = CostReport(block_size=block_size)
    entry = program.function(program.entry)
    for node in range(num_nodes):
        env = {"me": node}
        env.update(params_fn(node))
        evaluator = _Evaluator(env)
        sites: list[SiteEstimate] = []
        _walk(program, entry, evaluator, 1, True, sites, block_size,
              elem_size)
        report.per_node[node] = sites
    return report


def _guard_allows(evaluator: _Evaluator, cond: Expr) -> bool | None:
    """Evaluate ``me == k`` / ``me != k`` style guards; None = unknown."""
    value = evaluator.eval(cond)
    if value is None:
        return None
    return bool(value)


def _trip_count(evaluator: _Evaluator, stmt: For) -> tuple[int | None, bool]:
    lo = evaluator.eval(stmt.lo)
    hi = evaluator.eval(stmt.hi)
    step = evaluator.eval(stmt.step)
    if lo is None or hi is None or not step:
        return None, False
    return max(0, (hi - lo) // step + 1), True


def _target_blocks(evaluator: _Evaluator, annot: Annot, program: Program,
                   block_size: int, elem_size_default: int) -> tuple[int, bool]:
    """Distinct cache blocks one execution of ``annot`` touches.

    Enumerated exactly the way the machine expands a directive (per-dim
    index lists -> flat indices under the array's storage order -> distinct
    blocks); unevaluable specs fall back to one block and mark the estimate
    inexact."""
    blocks: set[tuple[str, int]] = set()
    exact = True
    fallback = 0
    for target in annot.targets:
        decl = program.arrays.get(target.array)
        if decl is None:
            exact = False
            fallback += 1
            continue
        per_dim: list[list[int]] = []
        evaluable = True
        for dim, spec in enumerate(target.specs):
            extent = decl.shape[dim]
            if isinstance(spec, RangeSpec):
                lo = evaluator.eval(spec.lo)
                hi = evaluator.eval(spec.hi)
                step = evaluator.eval(spec.step)
                if lo is None or hi is None or not step or step < 0:
                    evaluable = False
                    break
                values = [v for v in range(lo, hi + 1, step)
                          if 0 <= v < extent]
            else:
                value = evaluator.eval(spec)
                if value is None:
                    evaluable = False
                    break
                values = [value] if 0 <= value < extent else []
            if not values:
                per_dim = []
                break
            per_dim.append(values)
        if not evaluable:
            exact = False
            fallback += 1
            continue
        if not per_dim and len(target.specs):
            continue  # clipped to nothing: the machine ignores it too
        elem_size = decl.elem_size

        def flat_of(idx: tuple[int, ...]) -> int:
            flat = 0
            if decl.order == "C":
                for value, extent in zip(idx, decl.shape):
                    flat = flat * extent + value
            else:
                for value, extent in zip(reversed(idx), reversed(decl.shape)):
                    flat = flat * extent + value
            return flat

        import itertools

        for idx in itertools.product(*per_dim):
            block = (flat_of(idx) * elem_size) // block_size
            blocks.add((target.array, block))
    return len(blocks) + fallback, exact


def _walk(program, func_or_stmt, evaluator, multiplier, reachable, sites,
          block_size, elem_size) -> None:
    body = (
        func_or_stmt.body
        if isinstance(func_or_stmt, Function)
        else func_or_stmt
    )
    for stmt in body:
        if not reachable:
            return
        if isinstance(stmt, Annot):
            blocks, exact_blocks = _target_blocks(
                evaluator, stmt, program, block_size, elem_size
            )
            sites.append(
                SiteEstimate(
                    kind=stmt.kind,
                    target=", ".join(
                        _target_name(t) for t in stmt.targets
                    ),
                    pc=stmt.pc,
                    executions=multiplier,
                    blocks_per_execution=blocks,
                    exact=exact_blocks,
                )
            )
        elif isinstance(stmt, For):
            trips, _exact = _trip_count(evaluator, stmt)
            inner = multiplier * (trips if trips is not None else 1)
            saved = evaluator.loop_values.get(stmt.var)
            # Representative-iteration estimate: evaluate loop-var-dependent
            # targets at the first iteration (block counts per execution are
            # uniform across iterations for slice-shaped targets).
            evaluator.loop_values[stmt.var] = evaluator.eval(stmt.lo)
            _walk(program, stmt.body, evaluator, inner, True, sites,
                  block_size, elem_size)
            evaluator.loop_values[stmt.var] = saved
        elif isinstance(stmt, If):
            allows = _guard_allows(evaluator, stmt.cond)
            if allows is None or allows:
                _walk(program, stmt.then, evaluator, multiplier, True,
                      sites, block_size, elem_size)
            if allows is None or not allows:
                _walk(program, stmt.els, evaluator, multiplier, True,
                      sites, block_size, elem_size)
        else:
            for block in child_blocks(stmt):
                _walk(program, block, evaluator, multiplier, True, sites,
                      block_size, elem_size)


def _target_name(target) -> str:
    from repro.lang.unparse import target_str

    return target_str(target)
