"""Exception hierarchy for the Cachier reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AddressError(ReproError):
    """An address is outside any allocated region, misaligned, or otherwise bad."""


class LayoutError(ReproError):
    """Region allocation failed (overlap, exhaustion, bad size)."""


class LabelError(ReproError):
    """A labelled-region lookup failed (unknown label, unmapped address)."""


class CacheConfigError(ReproError):
    """Cache geometry is invalid (non power of two, zero ways, ...)."""


class ProtocolError(ReproError):
    """The Dir1SW protocol reached an inconsistent state.

    This always indicates a bug in the simulator, never a property of the
    simulated program, so it is deliberately loud.
    """


class MachineError(ReproError):
    """Machine-level misuse: wrong node id, kernel protocol violation, ..."""


class BarrierError(MachineError):
    """Barrier misuse: mismatched arrival counts or barrier while halted."""


class LangError(ReproError):
    """Errors constructing or analysing IR programs."""


class InterpError(LangError):
    """Runtime error while interpreting an IR program."""


class UnparseError(LangError):
    """The unparser met an AST node it cannot print."""


class TraceError(ReproError):
    """Trace file is malformed or records are inconsistent."""


class CachierError(ReproError):
    """A Cachier tool-level failure the user can act on: the annotator could
    not complete (missing labels, unknown PCs, ...), a run-time invariant
    check failed, or a workload tripped the execution watchdog.  CLIs catch
    this family and turn it into a one-line diagnostic + nonzero exit."""


class VerifyError(CachierError):
    """An online invariant check failed (:mod:`repro.verify`).

    Carries structured context — the node, epoch and block involved plus the
    recent event chain (joined by slow-path transaction id) that led up to
    the violation — so a failure names *where* the protocol went wrong, not
    just that it did.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        node: int | None = None,
        epoch: int | None = None,
        block: int | None = None,
        chain: tuple[str, ...] = (),
    ):
        where = ", ".join(
            f"{name}={value}"
            for name, value in (("node", node), ("epoch", epoch), ("block", block))
            if value is not None
        )
        text = f"[{invariant}] {message}"
        if where:
            text += f" ({where})"
        if chain:
            from repro.verify.format import format_chain

            text += "\n  event chain:\n" + format_chain(chain)
        super().__init__(text)
        self.invariant = invariant
        self.node = node
        self.epoch = epoch
        self.block = block
        self.chain = chain


class McError(CachierError):
    """The model checker (:mod:`repro.mc`) was misused or met a malformed
    artifact: an inconsistent exploration config, a schedule file whose
    actions are not applicable in order (a stale counterexample), an unknown
    protocol mutation name, or an exploration that exceeded its state/depth
    budget under ``require_exhaustive``.  Genuine protocol violations are
    *results*, not errors — they come back as counterexamples (CLI exit 1),
    while this family exits 2 via ``run_cli`` like every other ReproError."""


class WatchdogError(MachineError, CachierError):
    """The machine's max-cycles watchdog fired: a node is still running past
    the configured cycle budget (livelocked workload, runaway loop).  Names
    the stuck node and the pc of its last event."""

    def __init__(self, message: str, *, node: int | None = None, pc: int | None = None):
        super().__init__(message)
        self.node = node
        self.pc = pc


class CheckpointError(CachierError):
    """A checkpoint could not be written, read, or resumed from (corrupt
    snapshot, replay divergence, incompatible configuration)."""


class PoolError(CachierError):
    """The parallel sweep executor (:mod:`repro.harness.pool`) failed at the
    sweep level: bad ``--jobs``/``REPRO_JOBS``, duplicate task keys, or one
    or more runs that still failed after their retry (worker crash, watchdog
    kill, retry exhausted).  CLIs print the per-run error table first, then
    this one-line summary via ``run_cli`` (exit status 2)."""


class ServiceError(CachierError):
    """The annotation service (:mod:`repro.service`) refused a request or
    met a broken ledger: malformed job spec, unknown job id or artifact,
    corrupt sqlite state, or a daemon endpoint that cannot be reached.
    Server-side it maps to an HTTP 4xx/5xx with a JSON error body; client
    side ``run_cli`` turns it into the usual one-line exit-2 diagnostic."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ObsError(ReproError):
    """Observability subsystem misuse (bad metric, bad export target, ...)."""
