"""Exception hierarchy for the Cachier reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AddressError(ReproError):
    """An address is outside any allocated region, misaligned, or otherwise bad."""


class LayoutError(ReproError):
    """Region allocation failed (overlap, exhaustion, bad size)."""


class LabelError(ReproError):
    """A labelled-region lookup failed (unknown label, unmapped address)."""


class CacheConfigError(ReproError):
    """Cache geometry is invalid (non power of two, zero ways, ...)."""


class ProtocolError(ReproError):
    """The Dir1SW protocol reached an inconsistent state.

    This always indicates a bug in the simulator, never a property of the
    simulated program, so it is deliberately loud.
    """


class MachineError(ReproError):
    """Machine-level misuse: wrong node id, kernel protocol violation, ..."""


class BarrierError(MachineError):
    """Barrier misuse: mismatched arrival counts or barrier while halted."""


class LangError(ReproError):
    """Errors constructing or analysing IR programs."""


class InterpError(LangError):
    """Runtime error while interpreting an IR program."""


class UnparseError(LangError):
    """The unparser met an AST node it cannot print."""


class TraceError(ReproError):
    """Trace file is malformed or records are inconsistent."""


class CachierError(ReproError):
    """The annotator could not complete (missing labels, unknown PCs, ...)."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ObsError(ReproError):
    """Observability subsystem misuse (bad metric, bad export target, ...)."""
