"""Job specs: validation/normalization and the per-kind executors.

A *submitted* spec is whatever JSON the client sent; :func:`normalize_spec`
turns it into the canonical form that gets hashed and stored — every
default made explicit, every field validated — so two clients asking for
the same work with differently-spelled specs land on the same cache key.

:func:`execute_job` runs one normalized spec inside the daemon's worker
thread, writing the job's artifact set under its content-hash directory
and returning the JSON result stored in the ledger.  Executors reuse the
existing harness wholesale: the figure6 kind *is* ``sweep_figure6`` (pool
fan-out, obs exports, checkpoint ledger and all), which is what makes a
daemon kill mid-sweep resumable to byte-identical artifacts — the sweep
ledger in the artifact directory survives, and re-execution resumes from
it.

A :class:`~repro.errors.VerifyError` from a verify job is a *result* (the
content conclusively fails verification), not a job failure: it is stored
as ``ok: false`` and memoized like any other result, so re-verifying known
content — clean or violating — never re-runs the simulator.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ServiceError, VerifyError
from repro.obs.telemetry import job_phase
from repro.util.atomic_write import atomic_write_json, atomic_write_text

KINDS = ("annotate", "figure6", "bench", "profile", "critpath", "verify")
POLICIES = ("performance", "programmer")
VARIANTS = ("plain", "hand", "hand+pf", "cachier", "cachier+pf")


@dataclass(frozen=True)
class ExecContext:
    """Daemon-level execution settings every job inherits."""

    pool_jobs: int = 1
    #: perf-history ledger bench jobs append to (None = no ledger)
    history_path: str | None = None


# ------------------------------------------------------------- validation
def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ServiceError(f"bad job spec: {message}")


def _known_workload(name) -> str:
    from repro.workloads.base import registry

    _require(isinstance(name, str), f"workload must be a string, got {name!r}")
    _require(
        name in registry(),
        f"unknown workload {name!r} (available: {sorted(registry())})",
    )
    return name


def _policy(params) -> str:
    policy = params.get("policy", "performance")
    _require(policy in POLICIES, f"policy must be one of {POLICIES}")
    return policy


def _variant(params) -> str:
    variant = params.get("variant", "plain")
    _require(variant in VARIANTS, f"variant must be one of {VARIANTS}")
    return variant


def _faults(params):
    seed = params.get("faults")
    _require(
        seed is None or isinstance(seed, int),
        "faults must be an integer seed or null",
    )
    return seed


def _bool(params, name: str, default: bool) -> bool:
    value = params.get(name, default)
    _require(isinstance(value, bool), f"{name} must be a boolean")
    return value


def _source(params) -> dict | None:
    source = params.get("source")
    if source is None:
        return None
    _require(isinstance(source, dict), "source must be an object")
    _require(
        isinstance(source.get("text"), str) and source["text"].strip() != "",
        "source.text must be non-empty pseudocode",
    )
    out = {
        "text": source["text"],
        "name": str(source.get("name", "source")),
        "num_nodes": int(source.get("num_nodes", 4)),
        "cache_size": int(source.get("cache_size", 8192)),
        "block_size": int(source.get("block_size", 32)),
        "assoc": int(source.get("assoc", 4)),
        "params": source.get("params") or {},
    }
    _require(
        isinstance(out["params"], dict),
        "source.params must map node id -> bindings",
    )
    return out


def normalize_spec(kind: str, params: dict | None, *,
                   verify_default: bool = True) -> dict:
    """Validate and canonicalize one submitted job spec.

    ``verify_default`` is the daemon's default-on verification switch: jobs
    that execute simulations run under the online invariant checker unless
    the submission explicitly opts out (``"verify": false``).
    """
    params = dict(params or {})
    _require(kind in KINDS, f"unknown job kind {kind!r} (kinds: {KINDS})")

    if kind == "annotate":
        source = _source(params)
        spec = {
            "kind": kind,
            "source": source,
            "workload": None if source else _known_workload(
                params.get("workload", "matmul_racing")
            ),
            "policy": _policy(params),
            "prefetch": _bool(params, "prefetch", False),
            "history": int(params.get("history", 1)),
            "verify": _bool(params, "verify", verify_default),
        }
        _require(spec["history"] >= 1, "history must be >= 1")
        return spec

    if kind == "figure6":
        benchmarks = params.get("benchmarks")
        if benchmarks is None:
            benchmarks = ["barnes", "ocean", "mp3d", "matmul", "tomcatv"]
        _require(
            isinstance(benchmarks, (list, tuple)) and benchmarks,
            "benchmarks must be a non-empty list",
        )
        return {
            "kind": kind,
            "benchmarks": [_known_workload(b) for b in benchmarks],
            "include_prefetch": _bool(params, "include_prefetch", True),
            "policy": _policy(params),
            "faults": _faults(params),
            "verify": _bool(params, "verify", verify_default),
        }

    if kind == "bench":
        variants = params.get("variants")
        if variants is not None:
            _require(
                isinstance(variants, (list, tuple)) and variants
                and all(v in VARIANTS for v in variants),
                f"variants must be a non-empty list drawn from {VARIANTS}",
            )
            variants = list(variants)
        return {
            "kind": kind,
            "workload": _known_workload(params.get("workload", "mp3d")),
            "variants": variants,
            "verify": _bool(params, "verify", verify_default),
        }

    # profile / critpath / verify share the (workload, variant) shape
    spec = {
        "kind": kind,
        "workload": _known_workload(params.get("workload", "matmul")),
        "variant": _variant(params),
        "policy": _policy(params),
    }
    if kind == "verify":
        spec["faults"] = _faults(params)
        spec["strict"] = _bool(params, "strict", False)
    return spec


# -------------------------------------------------------------- execution
def _annotate_spec(spec: dict):
    """The WorkloadSpec an annotate job runs against."""
    from repro.workloads.base import get_workload, spec_from_source

    source = spec.get("source")
    if source is None:
        return get_workload(spec["workload"])
    return spec_from_source(
        source["text"],
        name=source["name"],
        num_nodes=source["num_nodes"],
        cache_size=source["cache_size"],
        block_size=source["block_size"],
        assoc=source["assoc"],
        params=source["params"],
    )


def _exec_annotate(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    from repro.cachier.annotator import Cachier, Policy
    from repro.harness.runner import trace_program
    from repro.lang.unparse import unparse_program

    wspec = _annotate_spec(spec)
    with job_phase("simulate", verify=spec["verify"]):
        trace = trace_program(
            wspec.program, wspec.config, wspec.params_fn,
            verify=spec["verify"],
        )
    with job_phase("annotate", policy=spec["policy"]):
        cachier = Cachier(
            wspec.program, trace, params_fn=wspec.params_fn,
            cache_size=wspec.cachier_cache_size,
        )
        result = cachier.annotate(
            Policy(spec["policy"]), prefetch=spec["prefetch"],
            history=spec["history"],
        )
        annotated = unparse_program(result.program, declarations=True)
    stats = result.stats
    summary = {
        "name": wspec.name,
        "policy": spec["policy"],
        "prefetch": spec["prefetch"],
        "annotations": {
            "boundary": stats.boundary,
            "near": stats.near,
            "hoisted": stats.hoisted,
            "prefetches": stats.prefetches,
            "comments": stats.comments,
        },
    }
    with job_phase("persist"):
        atomic_write_text(
            os.path.join(artifact_dir, "annotated.src"), annotated
        )
        atomic_write_text(
            os.path.join(artifact_dir, "report.txt"), result.report.render()
        )
        atomic_write_json(
            os.path.join(artifact_dir, "annotate.json"), summary,
            indent=2, sort_keys=True,
        )
    return summary


def _exec_figure6(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    from repro.cachier.annotator import Policy
    from repro.harness.figure6 import render_figure6, sweep_figure6
    from repro.harness.pool import summarize_failures

    obs_dir = os.path.join(artifact_dir, "obs")
    # resume=True: a requeued job picks up where the interrupted sweep's
    # ledger left off; on a fresh job the ledger simply does not exist yet.
    with job_phase("sweep", benchmarks=",".join(spec["benchmarks"])):
        sweep = sweep_figure6(
            tuple(spec["benchmarks"]),
            include_prefetch=spec["include_prefetch"],
            policy=Policy(spec["policy"]),
            obs_dir=obs_dir,
            faults_seed=spec["faults"],
            verify=spec["verify"],
            checkpoint_dir=artifact_dir,
            resume=True,
            jobs=ctx.pool_jobs,
        )
    if sweep.errors:
        raise summarize_failures(
            sweep.errors,
            total=len(sweep.errors) + sum(len(r.cycles) for r in sweep.rows),
        )
    rows = {row.benchmark: dict(row.cycles) for row in sweep.rows}
    with job_phase("persist"):
        table = render_figure6(sweep.rows)
        atomic_write_text(os.path.join(artifact_dir, "figure6.txt"), table)
        atomic_write_json(
            os.path.join(artifact_dir, "figure6.json"),
            {"rows": rows, "benchmarks": spec["benchmarks"]},
            indent=2, sort_keys=True,
        )
    return {"benchmarks": spec["benchmarks"], "rows": rows}


def _exec_bench(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    from repro.obs.baseline import bench_workload, write_bench

    kwargs = {}
    if spec["variants"]:
        kwargs["variants"] = tuple(spec["variants"])
    if spec.get("verify"):
        kwargs["verify"] = True
    timings: dict = {}
    if ctx.history_path:
        # Host timings feed the daemon's perf ledger (served at
        # /perf.html), never the BENCH artifact — cached re-serves of this
        # job must stay byte-identical to the original run's artifacts.
        kwargs["timings"] = timings
    with job_phase("simulate", workload=spec["workload"]):
        bench = bench_workload(spec["workload"], **kwargs)
    with job_phase("persist"):
        path = write_bench(bench, artifact_dir)
        if ctx.history_path:
            from repro.obs.history import append_entries, make_entry

            append_entries(ctx.history_path, [
                make_entry(
                    spec["workload"], variant,
                    cycles=bench["variants"][variant]["cycles"],
                    host_seconds=(timings.get(variant) or {}).get(
                        "host_seconds"),
                    phases=(timings.get(variant) or {}).get("hostprof"),
                    source="service",
                )
                for variant in sorted(bench["variants"])
            ])
    return {
        "workload": spec["workload"],
        "bench_file": os.path.basename(path),
        "cycles": {v: rec["cycles"] for v, rec in bench["variants"].items()},
    }


def _observed_run(spec: dict, *, profile: bool, critpath: bool):
    from repro.harness.pool import cached_variants
    from repro.harness.runner import run_program
    from repro.obs.session import Observer
    from repro.workloads.base import get_workload

    wspec = get_workload(spec["workload"])
    variants = cached_variants(spec["workload"], spec["policy"],
                               include_prefetch=True)
    program = variants.programs.get(spec["variant"])
    if program is None:
        raise ServiceError(
            f"workload {spec['workload']!r} has no variant "
            f"{spec['variant']!r} (available: {sorted(variants.programs)})"
        )
    observer = Observer(
        profile=profile, critpath=critpath,
        meta={"name": f"{spec['workload']}/{spec['variant']}",
              "workload": spec["workload"], "variant": spec["variant"]},
    )
    result, _ = run_program(
        program, wspec.config, wspec.params_fn, observer=observer,
        faults_seed=spec.get("faults"),
        verify=spec["kind"] == "verify",
        strict_verify=bool(spec.get("strict")),
        verify_label=f"{spec['workload']}/{spec['variant']}",
    )
    return result, observer.observation


def _exec_profile(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    with job_phase("simulate", workload=spec["workload"]):
        result, obs = _observed_run(spec, profile=True, critpath=False)
    with job_phase("persist"):
        atomic_write_json(
            os.path.join(artifact_dir, "attrib.json"), obs.attrib,
            indent=2, sort_keys=True,
        )
    hot = [r["array"] for r in obs.attrib["structures"][:3] if r["misses"]]
    return {
        "cycles": result.cycles,
        "epochs": result.epochs,
        "hot_structures": hot,
    }


def _exec_critpath(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    with job_phase("simulate", workload=spec["workload"]):
        result, obs = _observed_run(spec, profile=False, critpath=True)
    with job_phase("persist"):
        atomic_write_json(
            os.path.join(artifact_dir, "critpath.json"), obs.critpath,
            indent=2, sort_keys=True,
        )
    return {
        "cycles": result.cycles,
        "critical_path_fraction": obs.critpath["critical_path_fraction"],
        "straggler_epochs": obs.critpath["straggler_epochs"][:3],
    }


def _exec_verify(spec: dict, artifact_dir: str, ctx: ExecContext) -> dict:
    label = f"{spec['workload']}/{spec['variant']}"
    try:
        with job_phase("verify", label=label):
            result, _ = _observed_run(spec, profile=False, critpath=False)
    except VerifyError as exc:
        report = getattr(exc, "report", None)
        payload = (
            report.as_dict() if report is not None
            else {"label": label, "ok": False, "error": str(exc)}
        )
        with job_phase("persist"):
            atomic_write_json(
                os.path.join(artifact_dir, "verify.json"), payload,
                indent=2, sort_keys=True,
            )
        return {"ok": False, "label": label,
                "error": str(exc).splitlines()[0]}
    report = result.extra["verify_report"]
    with job_phase("persist"):
        atomic_write_json(
            os.path.join(artifact_dir, "verify.json"), report.as_dict(),
            indent=2, sort_keys=True,
        )
    return {
        "ok": True,
        "label": label,
        "checks": sum(report.checks.values()),
        "warnings": len(report.warnings),
    }


_EXECUTORS = {
    "annotate": _exec_annotate,
    "figure6": _exec_figure6,
    "bench": _exec_bench,
    "profile": _exec_profile,
    "critpath": _exec_critpath,
    "verify": _exec_verify,
}


def execute_job(spec: dict, artifact_dir: str,
                ctx: ExecContext | None = None) -> dict:
    """Run one normalized job spec; artifacts land under ``artifact_dir``."""
    ctx = ctx or ExecContext()
    os.makedirs(artifact_dir, exist_ok=True)
    fn = _EXECUTORS.get(spec.get("kind"))
    if fn is None:
        raise ServiceError(f"unknown job kind {spec.get('kind')!r}")
    return fn(spec, artifact_dir, ctx)


def list_artifacts(artifact_dir: str) -> list[str]:
    """The job's artifact set as sorted relative paths."""
    if not os.path.isdir(artifact_dir):
        return []
    out = []
    for root, _dirs, files in os.walk(artifact_dir):
        for name in files:
            if name.endswith(".tmp"):
                continue
            rel = os.path.relpath(os.path.join(root, name), artifact_dir)
            out.append(rel.replace(os.sep, "/"))
    return sorted(out)


__all__ = [
    "ExecContext",
    "KINDS",
    "POLICIES",
    "VARIANTS",
    "execute_job",
    "list_artifacts",
    "normalize_spec",
]
