"""A small urllib client for the repro-serve JSON API.

Used by the ``repro-client`` CLI and the tests; any HTTP or transport
failure surfaces as :class:`~repro.errors.ServiceError` so callers get
the repo's usual one-line exit-2 behaviour through ``run_cli``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError

#: job states that wait() treats as terminal
TERMINAL_STATES = ("done", "failed")


class ServiceClient:
    """Talk to one daemon at ``url`` (e.g. ``http://127.0.0.1:8642``)."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing
    def _request(self, path: str, body: dict | None = None) -> bytes:
        request = urllib.request.Request(self.url + path)
        if body is not None:
            request.data = json.dumps(body).encode("utf-8")
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                pass
            raise ServiceError(
                f"{path}: HTTP {exc.code}: {detail}"
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach {self.url}: {exc.reason}"
            ) from None

    def _json(self, path: str, body: dict | None = None) -> dict:
        raw = self._request(path, body)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"{path}: daemon returned non-JSON response: {exc}"
            ) from None

    # ----------------------------------------------------------------- api
    def healthy(self) -> bool:
        try:
            return self._request("/healthz").strip() == b"ok"
        except ServiceError:
            return False

    def status(self) -> dict:
        return self._json("/api/status")

    def metrics(self) -> dict:
        """The telemetry registry as JSON (``/api/metrics``)."""
        return self._json("/api/metrics")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition page (``GET /metrics``)."""
        return self._request("/metrics").decode("utf-8")

    def trace(self) -> dict:
        """The daemon's live Chrome trace (``/api/trace``)."""
        return self._json("/api/trace")

    def submit(self, kind: str, params: dict | None = None) -> dict:
        """Submit one job; the response carries ``disposition`` and
        ``cached`` (True when the content hash was already served)."""
        return self._json("/api/jobs", {"kind": kind, "params": params or {}})

    def job(self, job_id: int) -> dict:
        return self._json(f"/api/jobs/{int(job_id)}")

    def jobs(self) -> list[dict]:
        return self._json("/api/jobs")["jobs"]

    def wait(self, job_id: int, timeout: float = 600.0,
             poll_interval: float = 0.2) -> dict:
        """Poll until the job reaches ``done`` or ``failed``."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in TERMINAL_STATES:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def artifact(self, job_id: int, name: str) -> bytes:
        return self._request(f"/api/jobs/{int(job_id)}/artifacts/{name}")


__all__ = ["ServiceClient", "TERMINAL_STATES"]
