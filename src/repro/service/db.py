"""The sqlite job ledger (``repro.sqlite`` inside the daemon's data dir).

One row per distinct job *key* (content hash): states ``queued`` →
``running`` → ``done`` / ``failed``, with retry counts and wall-clock
timings.  The key is UNIQUE — re-submitting content the ledger already
holds never creates a second row; :meth:`JobDb.submit` instead reports how
the existing row absorbed the submission (``cached``, ``coalesced`` or
``requeued``).

The daemon is the only *writer*; worker threads share this object, which
serializes state transitions under one lock and gives every thread its own
sqlite connection.  Other processes (``repro-client dashboard``) read the
file concurrently, which WAL journaling makes safe.

Crash recovery: rows stuck in ``running`` can only mean the daemon died
mid-job (a clean failure would have moved them to ``failed``).  On startup
:meth:`JobDb.recover` moves them back to ``queued`` with ``retries + 1``
so the queue resumes exactly where the kill interrupted it — the
execution layer's own checkpoints (the figure6 sweep ledger) then make the
resumed job byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path

from repro.errors import ServiceError

DB_NAME = "repro.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    key         TEXT NOT NULL UNIQUE,
    kind        TEXT NOT NULL,
    spec        TEXT NOT NULL,
    state       TEXT NOT NULL DEFAULT 'queued',
    retries     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at  REAL,
    finished_at REAL,
    error       TEXT,
    result      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state);
"""

#: legal states, in lifecycle order
STATES = ("queued", "running", "done", "failed")


def _row_dict(row: sqlite3.Row | None) -> dict | None:
    return None if row is None else {k: row[k] for k in row.keys()}


class JobDb:
    """Thread-safe job ledger over one sqlite file."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / DB_NAME
        self._lock = threading.Lock()
        self._local = threading.local()
        with self._lock:
            conn = self._conn()
            conn.executescript(_SCHEMA)
            conn.commit()
            # Per-state counts are maintained incrementally from here on
            # (one full scan at open, O(1) on every transition) so the
            # status endpoint's polling never rescans the ledger.
            self._counts = self._scan_counts()

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(str(self.path), timeout=10.0)
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._local.conn = conn
        return conn

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def _count_move(self, old: str | None, new: str | None) -> None:
        """Shift one row between per-state tallies (callers hold the lock
        and have already committed the matching sqlite transition)."""
        if old is not None:
            self._counts[old] -= 1
        if new is not None:
            self._counts[new] += 1

    # ------------------------------------------------------------- writes
    def submit(self, key: str, kind: str, spec_json: str) -> tuple[dict, str]:
        """Record one submission; returns ``(job row, disposition)``.

        Dispositions: ``new`` (row created and queued), ``cached`` (a done
        row with this key already holds the artifacts), ``coalesced`` (the
        key is already queued or running — the submissions share that run),
        ``requeued`` (the key failed before; this submission retries it).
        """
        with self._lock:
            conn = self._conn()
            row = conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO jobs (key, kind, spec, state, submitted_at)"
                    " VALUES (?, ?, ?, 'queued', ?)",
                    (key, kind, spec_json, time.time()),
                )
                conn.commit()
                self._count_move(None, "queued")
                fresh = conn.execute(
                    "SELECT * FROM jobs WHERE key = ?", (key,)
                ).fetchone()
                return _row_dict(fresh), "new"
            if row["state"] == "done":
                return _row_dict(row), "cached"
            if row["state"] in ("queued", "running"):
                return _row_dict(row), "coalesced"
            # failed: give the content another chance
            conn.execute(
                "UPDATE jobs SET state='queued', error=NULL, result=NULL,"
                " submitted_at=?, started_at=NULL, finished_at=NULL"
                " WHERE id=?",
                (time.time(), row["id"]),
            )
            conn.commit()
            self._count_move("failed", "queued")
            fresh = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
            return _row_dict(fresh), "requeued"

    def claim_next(self) -> dict | None:
        """Atomically move the oldest queued job to ``running``."""
        with self._lock:
            conn = self._conn()
            row = conn.execute(
                "SELECT * FROM jobs WHERE state='queued'"
                " ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state='running', started_at=? WHERE id=?",
                (time.time(), row["id"]),
            )
            conn.commit()
            self._count_move("queued", "running")
            claimed = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (row["id"],)
            ).fetchone()
            return _row_dict(claimed)

    def finish(self, job_id: int, result_json: str) -> None:
        self._transition(job_id, "done", result=result_json)

    def fail(self, job_id: int, error: str) -> None:
        self._transition(job_id, "failed", error=error)

    def _transition(self, job_id, state, result=None, error=None) -> None:
        with self._lock:
            conn = self._conn()
            cur = conn.execute(
                "UPDATE jobs SET state=?, finished_at=?, result=?, error=?"
                " WHERE id=? AND state='running'",
                (state, time.time(), result, error, job_id),
            )
            conn.commit()
            if cur.rowcount != 1:
                raise ServiceError(
                    f"job {job_id} is not running; cannot move it to {state}"
                )
            self._count_move("running", state)

    def recover(self, max_retries: int = 3) -> tuple[list[dict], list[dict]]:
        """Startup crash recovery: requeue jobs a dead daemon left
        ``running``.  A job already requeued ``max_retries`` times is
        declared failed instead — it is what kept killing the daemon.
        Returns ``(requeued rows, failed rows)``."""
        requeued, failed = [], []
        with self._lock:
            conn = self._conn()
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state='running' ORDER BY id"
            ).fetchall()
            for row in rows:
                if row["retries"] >= max_retries:
                    conn.execute(
                        "UPDATE jobs SET state='failed', finished_at=?,"
                        " error=? WHERE id=?",
                        (
                            time.time(),
                            f"abandoned after {row['retries']} interrupted "
                            "attempts (the daemon died while running it)",
                            row["id"],
                        ),
                    )
                    self._count_move("running", "failed")
                    failed.append(_row_dict(row))
                else:
                    conn.execute(
                        "UPDATE jobs SET state='queued', retries=retries+1,"
                        " started_at=NULL WHERE id=?",
                        (row["id"],),
                    )
                    self._count_move("running", "queued")
                    requeued.append(_row_dict(row))
            conn.commit()
        return requeued, failed

    # -------------------------------------------------------------- reads
    def job(self, job_id: int) -> dict:
        row = self._conn().execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no job with id {job_id}")
        return _row_dict(row)

    def by_key(self, key: str) -> dict | None:
        return _row_dict(
            self._conn().execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
        )

    def jobs(self, limit: int | None = None) -> list[dict]:
        """All jobs, newest first."""
        sql = "SELECT * FROM jobs ORDER BY id DESC"
        args: tuple = ()
        if limit is not None:
            sql += " LIMIT ?"
            args = (limit,)
        return [_row_dict(r) for r in self._conn().execute(sql, args)]

    def counts(self) -> dict[str, int]:
        """Per-state row counts, O(1): maintained incrementally on every
        transition (seeded by one scan at open).  ``/api/status`` polls
        this; :meth:`counts_scan` is the ground truth it must match."""
        with self._lock:
            return dict(self._counts)

    def counts_scan(self) -> dict[str, int]:
        """Per-state counts recomputed by a full table scan — the
        reconciliation oracle for :meth:`counts` (tests assert equality)."""
        with self._lock:
            return self._scan_counts()

    def _scan_counts(self) -> dict[str, int]:
        out = {state: 0 for state in STATES}
        for row in self._conn().execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            out[row["state"]] = row["n"]
        return out


def open_readonly(directory: str | Path) -> JobDb:
    """Open an existing ledger for reading (dashboard export).  Refuses a
    directory that was never a service data dir."""
    path = Path(directory) / DB_NAME
    if not os.path.exists(path):
        raise ServiceError(f"no service ledger at {path}")
    return JobDb(directory)


__all__ = ["DB_NAME", "JobDb", "STATES", "open_readonly"]
