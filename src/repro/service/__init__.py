"""``repro.service`` — annotation-as-a-service.

A long-running daemon (the ``repro-serve`` console script) that accepts
annotate / figure6-sweep / bench / profile / critpath / verify jobs over a
local HTTP+JSON API, persists a job ledger in sqlite (queued → running →
done/failed, with retry counts and timings), fans execution out through the
existing :mod:`repro.harness.pool` process pool, and renders browsable HTML
dashboards from the stored artifacts.

The load-bearing idea is the *content-hash result cache*
(:mod:`repro.service.hashing`): every job is keyed by a canonical hash of
(program IR, machine config, variant, seed, faults spec, code version), so
a repeat submission — no matter when, or from which client — is an instant
cache hit returning the stored artifact set, byte-identical to a cold run.
Verification is default-on for served jobs precisely because it is
memoized this way: a content hash is only ever verified once.

Layout::

    hashing.py   canonical job keys (sha-256 over canonical JSON + IR text)
    db.py        sqlite job ledger (repro.sqlite), crash recovery
    jobs.py      job-spec normalization and executors
    queue.py     worker threads draining the ledger
    reports.py   HTML dashboards (job index, ops/telemetry page, Figure-6
                 tables, heatmaps, critpath views), all output HTML-escaped
    app.py       the HTTP server (JSON API + dashboards + /metrics)
    client.py    python client for the API
    cli.py       ``repro-serve`` and ``repro-client``

Operational telemetry (structured JSONL logs, the Prometheus ``/metrics``
page, and the daemon-session Chrome trace with submit→persist flow arrows)
lives in :mod:`repro.obs.logs` and :mod:`repro.obs.telemetry`; the queue
owns one :class:`~repro.obs.telemetry.ServiceTelemetry` and the HTTP layer
exposes it.  See ``docs/service.md`` for the API, job lifecycle and the
telemetry reference.
"""

from repro.service.client import ServiceClient
from repro.service.hashing import job_key
from repro.service.queue import JobQueue, ServiceConfig

__all__ = ["JobQueue", "ServiceClient", "ServiceConfig", "job_key"]
