"""HTML dashboards rendered from stored artifacts.

Pure functions from ledger rows + artifact JSON to HTML strings; the HTTP
layer serves them live and :func:`export_site` writes the same pages as a
static tree (the CI ``service-smoke`` job uploads that tree as its
artifact).

Pages:

* **index** — service status tiles plus the job ledger (state, timings,
  retry counts, cache key) with links into each job;
* **job detail** — per-kind sections: the Figure-6 table re-rendered as
  HTML (same normalization and cell formatting as the terminal table, via
  :func:`repro.harness.reporting.format_cell`), per-structure × per-epoch
  attribution heatmaps, critical-path straggler and what-if tables,
  annotated source, verify reports, and the artifact listing.

Every string that originates outside this module — program names, source
lines, error messages, artifact names, job specs — goes through
:func:`esc` before it reaches HTML.  Simulated programs and error text can
contain ``<``/``&`` freely (array slices like ``B[k, Ljp:Ujp]``, messages
quoting ``<pc>``), and annotate jobs accept arbitrary client text, so
unescaped interpolation would be a stored-XSS hole in every dashboard.
"""

from __future__ import annotations

import html
import json
import os
from typing import Callable, Sequence

from repro.harness.reporting import format_cell, is_numeric_column


def esc(value: object) -> str:
    """HTML-escape ``value``'s display text (always via ``format_cell`` so
    tables and text output agree on number formatting)."""
    return html.escape(format_cell(value), quote=True)


_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1, h2 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.75rem 0 1.5rem; }
caption { text-align: left; font-weight: 600; padding-bottom: 0.35rem; }
th, td { border: 1px solid #d0d0e0; padding: 0.3rem 0.6rem; }
th { background: #f0f0f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
span.state { padding: 0.1rem 0.5rem; border-radius: 0.6rem; }
span.state-queued  { background: #fff3cd; }
span.state-running { background: #cfe2ff; }
span.state-done    { background: #d1e7dd; }
span.state-failed  { background: #f8d7da; }
pre { background: #f6f6fb; padding: 0.8rem; overflow-x: auto; }
td.heat { width: 1.1rem; height: 1.1rem; padding: 0; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
.tile { border: 1px solid #d0d0e0; border-radius: 0.5rem;
        padding: 0.6rem 1rem; min-width: 7rem; }
.tile .big { font-size: 1.6rem; font-weight: 700; }
a { color: #23407c; }
"""


def page(title: str, body: str) -> str:
    """The common page shell.  ``title`` is escaped here; ``body`` must
    already be trusted HTML assembled by this module."""
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n"
        "</head><body>\n"
        f"{body}\n"
        "</body></html>\n"
    )


def html_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    cell_html: Callable[[int, int, object], str] | None = None,
) -> str:
    """An escaped HTML table with the text renderer's conventions: floats
    to three decimals, numeric columns right-aligned.

    ``cell_html(row, col, value)`` may override individual cells with
    trusted HTML (used for links); everything else is escaped.
    """
    numeric = [
        is_numeric_column(rows, col) if rows else False
        for col in range(len(headers))
    ]
    out = ["<table>"]
    if title:
        out.append(f"<caption>{esc(title)}</caption>")
    out.append(
        "<thead><tr>"
        + "".join(f"<th>{esc(h)}</th>" for h in headers)
        + "</tr></thead>"
    )
    out.append("<tbody>")
    for r, row in enumerate(rows):
        cells = []
        for c, value in enumerate(row):
            override = cell_html(r, c, value) if cell_html else None
            body = esc(value) if override is None else override
            klass = ' class="num"' if numeric[c] and override is None else ""
            cells.append(f"<td{klass}>{body}</td>")
        out.append("<tr>" + "".join(cells) + "</tr>")
    out.append("</tbody></table>")
    return "\n".join(out)


def _state_badge(state: str) -> str:
    return f'<span class="state state-{esc(state)}">{esc(state)}</span>'


def _duration(row: dict) -> object:
    if row.get("started_at") and row.get("finished_at"):
        return round(row["finished_at"] - row["started_at"], 2)
    return "-"


# ------------------------------------------------------------------ index
def render_index(status: dict, jobs: list[dict],
                 ops_link: bool = False) -> str:
    """The dashboard landing page.  ``ops_link`` adds the link to the live
    ops page (the static export has no live telemetry to link to)."""
    tiles = []
    for label, value in [
        ("version", status.get("version", "?")),
        ("queued", status["jobs"]["queued"]),
        ("running", status["jobs"]["running"]),
        ("done", status["jobs"]["done"]),
        ("failed", status["jobs"]["failed"]),
        ("cache hits", status["stats"]["cache_hits"]),
        ("coalesced", status["stats"]["coalesced"]),
    ]:
        tiles.append(
            f'<div class="tile"><div class="big">{esc(value)}</div>'
            f"<div>{esc(label)}</div></div>"
        )
    headers = ["id", "kind", "what", "state", "retries", "runtime (s)", "key"]
    rows = []
    for job in jobs:
        rows.append([
            job["id"], job["kind"], _job_subject(job), job["state"],
            job["retries"], _duration(job), job["key"][:12],
        ])

    def cell(r, c, value):
        if c == 0:
            return f'<a href="jobs/{int(value)}.html">{esc(value)}</a>'
        if c == 3:
            return _state_badge(str(value))
        return None

    body = [
        "<h1>repro.service — annotation as a service</h1>",
    ]
    if ops_link:
        body.append('<p><a href="/ops.html">operational telemetry</a> &middot;'
                    ' <a href="/perf.html">perf history</a> &middot;'
                    ' <a href="/metrics">/metrics</a></p>')
    body.extend([
        '<div class="tiles">' + "".join(tiles) + "</div>",
        html_table(headers, rows, title="job ledger (newest first)",
                   cell_html=cell),
    ])
    return page("repro.service dashboard", "\n".join(body))


def _job_subject(job: dict) -> str:
    spec = job.get("spec") or {}
    if spec.get("kind") == "figure6":
        return ", ".join(spec.get("benchmarks", []))
    source = spec.get("source")
    if source:
        return f"source:{source.get('name', '?')}"
    what = spec.get("workload", "?")
    if spec.get("variant"):
        what += f"/{spec['variant']}"
    return what


# --------------------------------------------------------------- ops page
def render_ops(status: dict, metrics: dict) -> str:
    """The live operational-telemetry page (``/ops.html``).

    Rendered from exactly what ``/api/status`` and ``/api/metrics`` serve,
    so the HTML view, ``repro-client top`` and a Prometheus scrape can
    never disagree about the numbers.
    """
    from repro.obs.telemetry import family_counts, snapshot_quantile

    jobs = status["jobs"]
    stats = status["stats"]
    tiles = []
    for label, value in [
        ("uptime (s)", status.get("uptime_s", "-")),
        ("workers", status.get("workers", "-")),
        ("queued", jobs["queued"]),
        ("running", jobs["running"]),
        ("submitted", stats["submitted"]),
        ("cache hits", stats["cache_hits"]),
        ("failed", stats["failed"]),
    ]:
        tiles.append(
            f'<div class="tile"><div class="big">{esc(value)}</div>'
            f"<div>{esc(label)}</div></div>"
        )
    body = [
        "<h1>repro.service — operational telemetry</h1>",
        '<p><a href="/">&larr; job index</a> &middot; '
        '<a href="/metrics">/metrics</a> (Prometheus) &middot; '
        '<a href="/api/metrics">/api/metrics</a> (JSON) &middot; '
        '<a href="/api/trace">/api/trace</a> (Chrome trace)</p>',
        '<div class="tiles">' + "".join(tiles) + "</div>",
    ]
    snap = metrics.get("metrics") or {}
    if not snap:
        body.append("<p>Telemetry is disabled "
                    "(<code>repro-serve --no-telemetry</code>).</p>")
        return page("repro.service ops", "\n".join(body))

    def first_label(labels: str) -> str:
        return labels.split('"')[1] if '"' in labels else labels

    def quantiles(hist: dict) -> list[object]:
        out: list[object] = []
        for frac in (0.5, 0.9, 0.99):
            q = snapshot_quantile(hist, frac)
            out.append("-" if q is None else q)
        return out

    job_hists = family_counts(snap, "service.job.latency_ms")
    if any(h["count"] for h in job_hists.values()):
        body.append(html_table(
            ["kind", "jobs", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)"],
            [[first_label(labels), hist["count"], *quantiles(hist),
              hist["max"]]
             for labels, hist in sorted(job_hists.items())],
            title="job execution latency",
        ))
    http_hists = family_counts(snap, "service.http.latency_us")
    if http_hists:
        body.append(html_table(
            ["route", "requests", "p50 (µs)", "p90 (µs)", "p99 (µs)"],
            [[first_label(labels), hist["count"], *quantiles(hist)]
             for labels, hist in sorted(http_hists.items())],
            title="HTTP request latency",
        ))
    counter_rows = []
    for family in ("service.submissions", "service.jobs.completed",
                   "service.jobs.retries"):
        for labels, value in sorted(family_counts(snap, family).items()):
            name = f"{family}{{{labels}}}" if labels else family
            counter_rows.append([name, value])
    body.append(html_table(["counter", "value"], counter_rows,
                           title="counters"))
    return page("repro.service ops", "\n".join(body))


# -------------------------------------------------------------- job pages
def render_job(payload: dict, artifact_href: Callable[[str], str]) -> str:
    """One job's detail page.  ``artifact_href(name)`` maps an artifact's
    relative name to the href the current surface serves it under (API
    route when live, relative file path when static)."""
    job_id = payload["id"]
    sections = [
        f"<h1>job {esc(job_id)} — {esc(payload['kind'])} "
        f"({esc(_job_subject(payload))})</h1>",
        '<p><a href="../index.html">&larr; job index</a></p>',
        html_table(
            ["state", "retries", "submitted", "runtime (s)", "cache key"],
            [[payload["state"], payload["retries"],
              round(payload["submitted_at"], 2), _duration(payload),
              payload["key"]]],
            cell_html=lambda r, c, v: _state_badge(str(v)) if c == 0 else None,
        ),
    ]
    if payload.get("error"):
        sections.append(
            f"<h2>error</h2><pre>{esc(payload['error'])}</pre>"
        )
    artifacts = payload.get("artifacts") or []
    readers = _ArtifactReader(payload, artifact_href)
    kind = payload["kind"]
    if kind == "figure6":
        sections.extend(_figure6_sections(readers))
    elif kind == "annotate":
        sections.extend(_annotate_sections(readers))
    elif kind == "profile":
        sections.extend(_profile_sections(readers))
    elif kind == "critpath":
        sections.extend(_critpath_sections(readers))
    elif kind == "verify":
        sections.extend(_verify_sections(payload))
    elif kind == "bench" and payload.get("result"):
        cycles = payload["result"].get("cycles", {})
        sections.append(html_table(
            ["variant", "cycles"], sorted(cycles.items()),
            title="bench headline cycles",
        ))
    if artifacts:
        sections.append("<h2>artifacts</h2><ul>")
        for name in artifacts:
            sections.append(
                f'<li><a href="{esc(artifact_href(name))}">{esc(name)}</a>'
                "</li>"
            )
        sections.append("</ul>")
    return page(f"job {job_id}", "\n".join(sections))


class _ArtifactReader:
    """Lazy artifact access for the section renderers (absent artifacts —
    e.g. a job that failed before writing them — render as nothing)."""

    def __init__(self, payload: dict, artifact_href):
        self.payload = payload
        self.href = artifact_href
        self.root = payload.get("_artifact_root")

    def json(self, name: str):
        if self.root is None:
            return None
        path = os.path.join(self.root, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def text(self, name: str) -> str | None:
        if self.root is None:
            return None
        try:
            with open(os.path.join(self.root, name), "r",
                      encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None


def _figure6_sections(reader: _ArtifactReader) -> list[str]:
    from repro.harness.figure6 import PAPER_CACHIER_NORM, Fig6Row
    from repro.harness.variants import (
        CACHIER,
        CACHIER_PREFETCH,
        HAND,
        HAND_PREFETCH,
        PLAIN,
    )

    data = reader.json("figure6.json")
    if not data:
        return []
    rows = [
        Fig6Row(benchmark=name, cycles=dict(data["rows"].get(name, {})))
        for name in data.get("benchmarks", sorted(data["rows"]))
    ]
    headers = ["benchmark", PLAIN, HAND, CACHIER]
    if any(CACHIER_PREFETCH in row.cycles for row in rows):
        headers += [CACHIER_PREFETCH, HAND_PREFETCH]
    headers.append("paper(cachier)")
    table = []
    for row in rows:
        cells: list[object] = [
            row.benchmark, 1.0 if PLAIN in row.cycles else "-"
        ]
        for variant in headers[2:-1]:
            norm = row.normalized(variant)
            cells.append("-" if norm is None else norm)
        cells.append(PAPER_CACHIER_NORM.get(row.benchmark, "-"))
        table.append(cells)
    out = ["<h2>Figure 6</h2>", html_table(
        headers, table,
        title="execution time normalized to the unannotated program",
    )]
    cycles_table = [
        [row.benchmark, variant, count]
        for row in rows for variant, count in sorted(row.cycles.items())
    ]
    out.append(html_table(
        ["benchmark", "variant", "cycles"], cycles_table,
        title="raw cycle counts",
    ))
    return out


def _annotate_sections(reader: _ArtifactReader) -> list[str]:
    out = []
    summary = reader.json("annotate.json")
    if summary:
        ann = summary.get("annotations", {})
        out.append("<h2>annotation statistics</h2>")
        out.append(html_table(
            ["program", "policy", "boundary", "near", "hoisted",
             "prefetches", "flags"],
            [[summary.get("name", "?"), summary.get("policy", "?"),
              ann.get("boundary", 0), ann.get("near", 0),
              ann.get("hoisted", 0), ann.get("prefetches", 0),
              ann.get("comments", 0)]],
        ))
    source = reader.text("annotated.src")
    if source is not None:
        out.append("<h2>annotated program</h2>")
        out.append(f"<pre>{esc(source)}</pre>")
    return out


def heatmap_html(attrib: dict, top: int = 10) -> str:
    """Per-structure × per-epoch miss heatmap as an HTML table (the
    dashboard twin of :func:`repro.obs.attrib.render_heatmap`)."""
    structures = [
        r["array"] for r in attrib["structures"][:top] if r["misses"]
    ]
    epochs = attrib["epochs"]
    if not structures or not epochs:
        return "<p>(no misses recorded)</p>"
    grid = [
        [e["per_structure"].get(array, 0) for e in epochs]
        for array in structures
    ]
    peak = max(max(row) for row in grid) or 1
    out = ["<table>",
           f"<caption>miss heatmap (rows: structures, cols: epochs; "
           f"peak {esc(peak)} misses)</caption>",
           "<thead><tr><th></th>"
           + "".join(f"<th>{esc(e['epoch'])}</th>" for e in epochs)
           + "</tr></thead>", "<tbody>"]
    for array, row in zip(structures, grid):
        cells = []
        for value in row:
            alpha = value / peak
            cells.append(
                f'<td class="heat" title="{esc(array)}: {esc(value)}" '
                f'style="background: rgba(35, 64, 124, {alpha:.3f})"></td>'
            )
        out.append(f"<tr><th>{esc(array)}</th>" + "".join(cells) + "</tr>")
    out.append("</tbody></table>")
    labels = [e for e in epochs if e.get("label")]
    if labels:
        out.append(
            "<p>epoch labels: "
            + ", ".join(f"{esc(e['epoch'])}={esc(e['label'])}" for e in labels)
            + "</p>"
        )
    return "\n".join(out)


def _profile_sections(reader: _ArtifactReader) -> list[str]:
    attrib = reader.json("attrib.json")
    if not attrib:
        return []
    out = ["<h2>attribution</h2>", heatmap_html(attrib)]
    rows = [
        [r["array"], r["misses"], r["stall_cycles"], r["traps"],
         r["recalls"], r["lock_wait_cycles"]]
        for r in attrib["structures"][:10]
    ]
    out.append(html_table(
        ["structure", "misses", "stall cycles", "traps", "recalls",
         "lock wait"],
        rows, title="hot structures",
    ))
    lines = [
        [r["array"], r.get("line", "-") or "-", trim(r.get("source", "")),
         r["misses"], r["stall_cycles"]]
        for r in attrib["lines"][:10]
    ]
    out.append(html_table(
        ["structure", "line", "source", "misses", "stall cycles"], lines,
        title="hot source lines",
    ))
    return out


def trim(text: object) -> str:
    """Trim helper for source-line cells; escaping happens in
    :func:`html_table` like any other cell (source lines carry raw program
    text, e.g. ``check_out_S B[k, Ljp:Ujp]``)."""
    value = str(text)
    return value if len(value) <= 60 else value[:57] + "..."


def _critpath_sections(reader: _ArtifactReader) -> list[str]:
    crit = reader.json("critpath.json")
    if not crit:
        return []
    out = ["<h2>critical path</h2>"]
    out.append(html_table(
        ["cycles", "critical-path fraction", "critical stall cycles"],
        [[crit["cycles"], crit["critical_path_fraction"],
          crit["critical_stall_cycles"]]],
    ))
    stragglers = [
        [node, count] for node, count in crit["straggler_epochs"][:10]
    ]
    out.append(html_table(
        ["node", "epochs critical"], stragglers,
        title="straggler nodes (how often each node was the epoch's "
              "critical node)",
    ))
    what_if = [
        [w["array"], w.get("line", "-") or "-", trim(w.get("source", "")),
         w["est_savings"]]
        for w in crit.get("what_if", [])[:10]
    ]
    if what_if:
        out.append(html_table(
            ["structure", "line", "source", "est. cycle saving"], what_if,
            title="what-if ranking: candidate CICO sites by estimated "
                  "epoch-time savings",
        ))
    return out


def _verify_sections(payload: dict) -> list[str]:
    result = payload.get("result") or {}
    if not result:
        return []
    if result.get("ok"):
        verdict = (
            f"<p>PASS — {esc(result.get('checks', 0))} checks, "
            f"{esc(result.get('warnings', 0))} cico warnings.</p>"
        )
    else:
        verdict = (
            f"<p>FAIL — <code>{esc(result.get('error', 'violation'))}"
            "</code></p>"
        )
    return ["<h2>verification</h2>", verdict]


# ---------------------------------------------------------- static export
def export_site(data_dir: str, out_dir: str,
                status: dict | None = None) -> list[str]:
    """Write the dashboard as a static HTML tree (plus artifact copies).

    Renders from the sqlite ledger + artifact store alone, so it works
    against a live daemon's data dir (WAL journaling) and a dead one's.
    Returns the files written, relative to ``out_dir``.
    """
    import shutil

    from repro.service.db import open_readonly
    from repro.service.jobs import list_artifacts
    from repro.service.queue import ARTIFACTS_DIR

    db = open_readonly(data_dir)
    try:
        jobs = db.jobs()
        counts = db.counts()
    finally:
        db.close()
    if status is None:
        from repro.cliutil import package_version

        status = {
            "version": package_version(),
            "jobs": counts,
            "stats": {"cache_hits": "-", "coalesced": "-"},
        }
    payloads = []
    for row in jobs:
        payload = dict(row)
        payload["spec"] = json.loads(row["spec"]) if row.get("spec") else {}
        payload["result"] = (
            json.loads(row["result"]) if row.get("result") else None
        )
        root = os.path.join(data_dir, ARTIFACTS_DIR, row["key"])
        payload["artifacts"] = list_artifacts(root)
        payload["_artifact_root"] = root
        payloads.append(payload)

    os.makedirs(os.path.join(out_dir, "jobs"), exist_ok=True)
    written = []
    index_path = os.path.join(out_dir, "index.html")
    with open(index_path, "w", encoding="utf-8") as fh:
        fh.write(render_index(status, payloads))
    written.append("index.html")
    # The perf trend page: rendered through the same pure function the live
    # /perf.html route uses, over the same ledger, so the exported bytes
    # equal the served bytes (missing ledger -> same empty-state page).
    from repro.obs.history import DEFAULT_LEDGER, read_history, render_perf_html

    entries = read_history(os.path.join(data_dir, DEFAULT_LEDGER))
    with open(os.path.join(out_dir, "perf.html"), "w",
              encoding="utf-8") as fh:
        fh.write(render_perf_html(entries))
    written.append("perf.html")
    for payload in payloads:
        key = payload["key"]

        def href(name: str, key=key) -> str:
            return f"../artifacts/{key}/{name}"

        job_rel = os.path.join("jobs", f"{payload['id']}.html")
        with open(os.path.join(out_dir, job_rel), "w",
                  encoding="utf-8") as fh:
            fh.write(render_job(payload, href))
        written.append(job_rel)
        if payload["artifacts"]:
            dest = os.path.join(out_dir, "artifacts", key)
            shutil.copytree(payload["_artifact_root"], dest,
                            dirs_exist_ok=True)
            written.extend(
                os.path.join("artifacts", key, name)
                for name in payload["artifacts"]
            )
    return written


__all__ = [
    "esc",
    "export_site",
    "heatmap_html",
    "html_table",
    "page",
    "render_index",
    "render_job",
    "render_ops",
]
