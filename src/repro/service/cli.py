"""Console entry points: ``repro-serve`` (daemon) and ``repro-client``.

The daemon writes ``service.json`` — ``{"url", "pid", "version"}`` — into
its data directory once bound, so clients on the same machine can find it
with ``--data-dir`` instead of copying a URL around.

``python -m repro.service.cli serve|client ...`` dispatches to the same
two mains.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Sequence

from repro.cliutil import add_version, package_version, run_cli
from repro.errors import ServiceError
from repro.obs.logs import LOG_LEVELS

SERVICE_FILE = "service.json"


# -------------------------------------------------------------------- serve
def _serve(argv: Sequence[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Annotation-as-a-service daemon: job queue, "
        "content-hash result cache, HTML dashboards.",
    )
    parser.add_argument("--data-dir", required=True,
                        help="ledger + artifact directory (created if needed)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one; default 8642)")
    parser.add_argument("--workers", type=int, default=1,
                        help="concurrent job executors (default 1)")
    parser.add_argument("--pool-jobs", type=int, default=1,
                        help="process-pool width inside sweep jobs")
    parser.add_argument("--no-verify", action="store_true",
                        help="turn off default-on verification for "
                        "served simulations")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="interrupted attempts before a job is abandoned")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request (DEBUG shorthand)")
    parser.add_argument("--log-file",
                        help="write JSONL logs here instead of stderr")
    parser.add_argument("--log-level", default="INFO", choices=LOG_LEVELS,
                        help="structured log threshold (default INFO)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="turn off service metrics and tracing "
                        "(structured logs stay on)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the daemon-session Chrome trace here on "
                        "shutdown (default <data-dir>/service.trace.json)")
    parser.add_argument("--history-path", metavar="PATH",
                        help="perf-history ledger bench jobs append to and "
                        "/perf.html renders (default "
                        "<data-dir>/perf_history.jsonl)")
    add_version(parser, "repro-serve")
    args = parser.parse_args(argv)

    from repro.obs.logs import configure_logging, get_logger
    from repro.service.app import serve
    from repro.service.queue import JobQueue, ServiceConfig
    from repro.util.atomic_write import atomic_write_json

    level = "DEBUG" if args.verbose else args.log_level
    configure_logging(level=level, path=args.log_file)
    log = get_logger("repro.service")

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    queue = JobQueue(ServiceConfig(
        data_dir=str(data_dir),
        workers=args.workers,
        pool_jobs=args.pool_jobs,
        verify_default=not args.no_verify,
        max_retries=args.max_retries,
        telemetry=not args.no_telemetry,
        history_path=args.history_path,
    ))
    server = serve(queue, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    atomic_write_json(
        data_dir / SERVICE_FILE,
        {"url": url, "pid": os.getpid(), "version": package_version()},
        indent=2, sort_keys=True,
    )
    if args.log_file:
        # keep the one human-facing line on stderr when logs go to a file
        print(f"repro-serve: listening on {url} "
              f"(data dir {data_dir})", file=sys.stderr, flush=True)
    log.info(
        "daemon listening", url=url, data_dir=str(data_dir),
        workers=queue.config.workers, telemetry=queue.telemetry.enabled,
        log_level=level,
    )

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        log.info("daemon shutting down")
    finally:
        server.shutdown()
        queue.stop()
        if queue.telemetry.enabled:
            trace_path = Path(args.trace_out or
                              data_dir / "service.trace.json")
            atomic_write_json(
                trace_path,
                queue.telemetry.tracer.chrome_trace({
                    "url": url, "data_dir": str(data_dir),
                    "version": package_version(),
                }),
            )
            log.info("service trace written", path=str(trace_path))
    return 0


def serve_main(argv: Sequence[str] | None = None) -> int:
    return run_cli(_serve, argv, prog="repro-serve")


# ------------------------------------------------------------------- client
def _endpoint(args) -> str:
    """The daemon URL: ``--url`` wins, else ``--data-dir/service.json``."""
    if args.url:
        return args.url
    if args.data_dir:
        path = Path(args.data_dir) / SERVICE_FILE
        try:
            return json.loads(path.read_text(encoding="utf-8"))["url"]
        except FileNotFoundError:
            raise ServiceError(
                f"no {SERVICE_FILE} in {args.data_dir} — is the daemon "
                f"running with that --data-dir?"
            ) from None
        except (json.JSONDecodeError, KeyError) as exc:
            raise ServiceError(f"corrupt {path}: {exc}") from None
    raise ServiceError("need --url or --data-dir to locate the daemon")


def _params(args) -> dict:
    if not args.params:
        return {}
    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"--params is not JSON: {exc}") from None
    if not isinstance(params, dict):
        raise ServiceError("--params must be a JSON object")
    return params


def _dump(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _render_top(status: dict, metrics: dict) -> str:
    """``repro-client top``: the ops dashboard as fixed-width tables."""
    from repro.harness.reporting import render_table
    from repro.obs.telemetry import family_counts, snapshot_quantile

    jobs = status["jobs"]
    stats = status["stats"]
    parts = [
        f"repro-serve v{status['version']}  "
        f"uptime {status['uptime_s']:.1f}s  "
        f"workers {status['workers']}  "
        f"telemetry {'on' if status.get('telemetry') else 'off'}",
        "",
        render_table(
            ["queued", "running", "done", "failed"],
            [[jobs[s] for s in ("queued", "running", "done", "failed")]],
            title="ledger",
        ),
        render_table(
            list(stats), [list(stats.values())], title="since start",
        ),
    ]
    snap = metrics.get("metrics") or {}
    if snap:
        def quantiles(hist):
            return [
                "-" if (q := snapshot_quantile(hist, frac)) is None else q
                for frac in (0.5, 0.9, 0.99)
            ]

        job_rows = [
            [labels.split('"')[1], hist["count"], *quantiles(hist)]
            for labels, hist in sorted(
                family_counts(snap, "service.job.latency_ms").items()
            )
        ]
        if job_rows:
            parts.append(render_table(
                ["kind", "jobs", "p50_ms", "p90_ms", "p99_ms"], job_rows,
                title="job latency",
            ))
        http_rows = [
            [labels.split('"')[1], hist["count"], *quantiles(hist)]
            for labels, hist in sorted(
                family_counts(snap, "service.http.latency_us").items()
            )
        ]
        if http_rows:
            parts.append(render_table(
                ["route", "requests", "p50_us", "p90_us", "p99_us"],
                http_rows, title="http latency",
            ))
        counter_rows = [
            [f"{family}{{{labels}}}" if labels else family, value]
            for family in ("service.submissions", "service.jobs.completed",
                           "service.jobs.retries")
            for labels, value in sorted(family_counts(snap, family).items())
        ]
        parts.append(render_table(["counter", "value"], counter_rows,
                                  title="counters"))
    else:
        parts.append("(telemetry disabled: no metrics to show)")
    return "\n\n".join(parts) + "\n"


def _client(argv: Sequence[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Submit and inspect repro-serve jobs.",
    )
    parser.add_argument("--url", help="daemon endpoint, e.g. "
                        "http://127.0.0.1:8642")
    parser.add_argument("--data-dir",
                        help="daemon data dir (reads its service.json)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait in blocking commands")
    add_version(parser, "repro-client")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="submit a job")
    p.add_argument("kind", help="annotate | figure6 | bench | profile | "
                   "critpath | verify")
    p.add_argument("--params", help="job parameters as a JSON object")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes")

    p = sub.add_parser("show", help="print one job")
    p.add_argument("id", type=int)

    p = sub.add_parser("wait", help="block until a job finishes")
    p.add_argument("id", type=int)

    sub.add_parser("list", help="print the job ledger")
    sub.add_parser("status", help="print daemon status")
    sub.add_parser("top", help="one-shot terminal snapshot of the daemon's "
                   "operational telemetry")

    p = sub.add_parser("artifact", help="fetch one artifact's bytes")
    p.add_argument("id", type=int)
    p.add_argument("name", help="artifact path, e.g. figure6.txt")
    p.add_argument("-o", "--out", help="write to a file instead of stdout")

    p = sub.add_parser("dashboard",
                       help="export the static HTML dashboard from the "
                       "daemon's data dir (requires --data-dir)")
    p.add_argument("--out", required=True, help="output directory")

    args = parser.parse_args(argv)

    if args.command == "dashboard":
        from repro.service.reports import export_site

        if not args.data_dir:
            raise ServiceError("dashboard export reads the ledger directly: "
                               "pass --data-dir")
        written = export_site(args.data_dir, args.out)
        print(f"wrote {len(written)} pages under {args.out}")
        return 0

    from repro.service.client import ServiceClient

    client = ServiceClient(_endpoint(args))
    if args.command == "submit":
        payload = client.submit(args.kind, _params(args))
        if args.wait and not payload["cached"]:
            payload = client.wait(payload["id"], timeout=args.timeout)
        _dump(payload)
        return 2 if payload["state"] == "failed" and args.wait else 0
    if args.command == "show":
        _dump(client.job(args.id))
        return 0
    if args.command == "wait":
        payload = client.wait(args.id, timeout=args.timeout)
        _dump(payload)
        return 2 if payload["state"] == "failed" else 0
    if args.command == "list":
        _dump(client.jobs())
        return 0
    if args.command == "status":
        _dump(client.status())
        return 0
    if args.command == "top":
        sys.stdout.write(_render_top(client.status(), client.metrics()))
        return 0
    if args.command == "artifact":
        data = client.artifact(args.id, args.name)
        if args.out:
            Path(args.out).write_bytes(data)
        else:
            sys.stdout.buffer.write(data)
        return 0
    raise ServiceError(f"unknown command {args.command!r}")


def client_main(argv: Sequence[str] | None = None) -> int:
    return run_cli(_client, argv, prog="repro-client")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.service.cli serve|client ...``"""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    print("usage: python -m repro.service.cli {serve,client} ...",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
