"""Console entry points: ``repro-serve`` (daemon) and ``repro-client``.

The daemon writes ``service.json`` — ``{"url", "pid", "version"}`` — into
its data directory once bound, so clients on the same machine can find it
with ``--data-dir`` instead of copying a URL around.

``python -m repro.service.cli serve|client ...`` dispatches to the same
two mains.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Sequence

from repro.cliutil import add_version, package_version, run_cli
from repro.errors import ServiceError

SERVICE_FILE = "service.json"


# -------------------------------------------------------------------- serve
def _serve(argv: Sequence[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Annotation-as-a-service daemon: job queue, "
        "content-hash result cache, HTML dashboards.",
    )
    parser.add_argument("--data-dir", required=True,
                        help="ledger + artifact directory (created if needed)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one; default 8642)")
    parser.add_argument("--workers", type=int, default=1,
                        help="concurrent job executors (default 1)")
    parser.add_argument("--pool-jobs", type=int, default=1,
                        help="process-pool width inside sweep jobs")
    parser.add_argument("--no-verify", action="store_true",
                        help="turn off default-on verification for "
                        "served simulations")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="interrupted attempts before a job is abandoned")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")
    add_version(parser, "repro-serve")
    args = parser.parse_args(argv)

    from repro.service.app import serve
    from repro.service.queue import JobQueue, ServiceConfig
    from repro.util.atomic_write import atomic_write_json

    data_dir = Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    queue = JobQueue(ServiceConfig(
        data_dir=str(data_dir),
        workers=args.workers,
        pool_jobs=args.pool_jobs,
        verify_default=not args.no_verify,
        max_retries=args.max_retries,
    ))
    server = serve(queue, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    atomic_write_json(
        data_dir / SERVICE_FILE,
        {"url": url, "pid": os.getpid(), "version": package_version()},
        indent=2, sort_keys=True,
    )
    print(f"repro-serve: listening on {url} "
          f"(data dir {data_dir})", file=sys.stderr, flush=True)

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-serve: shutting down", file=sys.stderr, flush=True)
    finally:
        server.shutdown()
        queue.stop()
    return 0


def serve_main(argv: Sequence[str] | None = None) -> int:
    return run_cli(_serve, argv, prog="repro-serve")


# ------------------------------------------------------------------- client
def _endpoint(args) -> str:
    """The daemon URL: ``--url`` wins, else ``--data-dir/service.json``."""
    if args.url:
        return args.url
    if args.data_dir:
        path = Path(args.data_dir) / SERVICE_FILE
        try:
            return json.loads(path.read_text(encoding="utf-8"))["url"]
        except FileNotFoundError:
            raise ServiceError(
                f"no {SERVICE_FILE} in {args.data_dir} — is the daemon "
                f"running with that --data-dir?"
            ) from None
        except (json.JSONDecodeError, KeyError) as exc:
            raise ServiceError(f"corrupt {path}: {exc}") from None
    raise ServiceError("need --url or --data-dir to locate the daemon")


def _params(args) -> dict:
    if not args.params:
        return {}
    try:
        params = json.loads(args.params)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"--params is not JSON: {exc}") from None
    if not isinstance(params, dict):
        raise ServiceError("--params must be a JSON object")
    return params


def _dump(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _client(argv: Sequence[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Submit and inspect repro-serve jobs.",
    )
    parser.add_argument("--url", help="daemon endpoint, e.g. "
                        "http://127.0.0.1:8642")
    parser.add_argument("--data-dir",
                        help="daemon data dir (reads its service.json)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait in blocking commands")
    add_version(parser, "repro-client")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="submit a job")
    p.add_argument("kind", help="annotate | figure6 | bench | profile | "
                   "critpath | verify")
    p.add_argument("--params", help="job parameters as a JSON object")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes")

    p = sub.add_parser("show", help="print one job")
    p.add_argument("id", type=int)

    p = sub.add_parser("wait", help="block until a job finishes")
    p.add_argument("id", type=int)

    sub.add_parser("list", help="print the job ledger")
    sub.add_parser("status", help="print daemon status")

    p = sub.add_parser("artifact", help="fetch one artifact's bytes")
    p.add_argument("id", type=int)
    p.add_argument("name", help="artifact path, e.g. figure6.txt")
    p.add_argument("-o", "--out", help="write to a file instead of stdout")

    p = sub.add_parser("dashboard",
                       help="export the static HTML dashboard from the "
                       "daemon's data dir (requires --data-dir)")
    p.add_argument("--out", required=True, help="output directory")

    args = parser.parse_args(argv)

    if args.command == "dashboard":
        from repro.service.reports import export_site

        if not args.data_dir:
            raise ServiceError("dashboard export reads the ledger directly: "
                               "pass --data-dir")
        written = export_site(args.data_dir, args.out)
        print(f"wrote {len(written)} pages under {args.out}")
        return 0

    from repro.service.client import ServiceClient

    client = ServiceClient(_endpoint(args))
    if args.command == "submit":
        payload = client.submit(args.kind, _params(args))
        if args.wait and not payload["cached"]:
            payload = client.wait(payload["id"], timeout=args.timeout)
        _dump(payload)
        return 2 if payload["state"] == "failed" and args.wait else 0
    if args.command == "show":
        _dump(client.job(args.id))
        return 0
    if args.command == "wait":
        payload = client.wait(args.id, timeout=args.timeout)
        _dump(payload)
        return 2 if payload["state"] == "failed" else 0
    if args.command == "list":
        _dump(client.jobs())
        return 0
    if args.command == "status":
        _dump(client.status())
        return 0
    if args.command == "artifact":
        data = client.artifact(args.id, args.name)
        if args.out:
            Path(args.out).write_bytes(data)
        else:
            sys.stdout.buffer.write(data)
        return 0
    raise ServiceError(f"unknown command {args.command!r}")


def client_main(argv: Sequence[str] | None = None) -> int:
    return run_cli(_client, argv, prog="repro-client")


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.service.cli serve|client ...``"""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    print("usage: python -m repro.service.cli {serve,client} ...",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
