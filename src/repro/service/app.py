"""The daemon's HTTP surface: a JSON API plus the live dashboards.

Stdlib only (``http.server``); the daemon binds localhost by default and
is a trusted-network tool, not an internet-facing one.  The handler is
deliberately thin — every decision lives in :class:`JobQueue` — so the
API, the CLI client and the tests exercise identical semantics.

Routes::

    GET  /healthz                       liveness probe ("ok")
    GET  /metrics                       Prometheus text exposition
    GET  /api/metrics                   the same registry as JSON
    GET  /api/trace                     daemon-lifetime Chrome trace JSON
    GET  /api/status                    version, queue counts, cache stats
    GET  /api/jobs                      job ledger, newest first
    POST /api/jobs                      submit {"kind": ..., "params": {...}}
    GET  /api/jobs/<id>                 one job (spec, result, artifacts)
    GET  /api/jobs/<id>/artifacts/<p>   one stored artifact's bytes
    GET  /                              HTML dashboard index
    GET  /ops.html                      live operational telemetry dashboard
    GET  /perf.html                     perf-history trend page (sparklines)
    GET  /jobs/<id>.html                HTML job detail

Submission responses carry ``disposition``: ``new`` (queued),
``cached`` (content hash already served — stored artifacts, zero simulator
cycles), ``coalesced`` (an identical job is already in flight) or
``requeued`` (a previously failed key, retried).

Every request is instrumented: counted and latency-bucketed into the
queue's :class:`~repro.obs.telemetry.ServiceTelemetry` under a
low-cardinality *route template* (``/api/jobs/{id}``, never the raw
path), recorded as a span in the service Chrome trace, and structured-
logged (GETs at DEBUG — the client polls — POSTs at INFO).  An exception
no ``except`` clause claims is logged once with its traceback and mapped
to a 500, instead of vanishing into ``ThreadingHTTPServer``'s default
stderr handler.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceError
from repro.obs.logs import get_logger
from repro.service.queue import JobQueue

_CONTENT_TYPES = {
    ".json": "application/json",
    ".jsonl": "application/jsonl",
    ".html": "text/html; charset=utf-8",
    ".txt": "text/plain; charset=utf-8",
    ".src": "text/plain; charset=utf-8",
}

#: routes the instrumentation templates exactly as written
_EXACT_ROUTES = frozenset({
    "/", "/healthz", "/metrics", "/ops.html", "/perf.html", "/index.html",
    "/api/status", "/api/jobs", "/api/metrics", "/api/trace",
})


def route_template(path: str) -> str:
    """Collapse a request path onto a bounded route vocabulary, so metric
    label sets stay small no matter what clients ask for."""
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path in _EXACT_ROUTES:
        return path
    if path.startswith("/api/jobs/"):
        if "/artifacts/" in path:
            return "/api/jobs/{id}/artifacts/{name}"
        return "/api/jobs/{id}"
    if path.startswith("/jobs/") and path.endswith(".html"):
        return "/jobs/{id}.html"
    return "(other)"


class ServiceHandler(BaseHTTPRequestHandler):
    server: "ServiceServer"

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # http.server's own chatter (it logs errors like unreadable
        # sockets here) goes to the structured log, never raw stderr.
        self.server.log.debug("http.server: " + (format % args))

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _html(self, text: str, status: int = 200) -> None:
        self._send(status, text.encode("utf-8"), "text/html; charset=utf-8")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        self._instrumented("GET", self._route_get, not_found=404)

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        self._instrumented("POST", self._route_post, not_found=400)

    def _instrumented(self, method: str, route_fn, not_found: int) -> None:
        """Dispatch one request with telemetry around it: latency histogram
        + request counter under the route template, an HTTP span in the
        service trace (carrying the submission's flow arrow for POSTs that
        created or joined a job), and a structured log line.  Any exception
        the route handlers didn't claim is logged exactly once — with the
        job-free request context and the traceback — and answered 500."""
        self._status = 0  # _send records the real one
        self._flow_cid = None  # _route_post records the submission's id
        telemetry = self.server.queue.telemetry
        log = self.server.log
        ts_us = telemetry.tracer.now_us()
        start = time.monotonic()
        try:
            route_fn()
        except ServiceError as exc:
            self._error(not_found, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))
        except Exception as exc:
            log.exception(
                "request handler crashed", method=method, path=self.path,
                error=repr(exc),
            )
            try:
                self._error(500, f"internal error: {exc!r}")
            except OSError:  # client already hung up
                pass
        dur_s = time.monotonic() - start
        route = route_template(self.path)
        status = getattr(self, "_status", 0)
        telemetry.http_request(method, route, status, dur_s)
        telemetry.tracer.http_span(
            method, route, status, ts_us, int(dur_s * 1e6),
            correlation=self._flow_cid,
        )
        # the client polls /api/jobs/{id}; keep steady-state INFO quiet
        emit = log.info if method == "POST" else log.debug
        emit(
            "request", method=method, route=route, path=self.path,
            status=status, dur_ms=round(dur_s * 1e3, 3),
            **({"correlation": self._flow_cid} if self._flow_cid else {}),
        )

    def _route_get(self) -> None:
        queue = self.server.queue
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, b"ok\n", "text/plain; charset=utf-8")
        elif path == "/metrics":
            body = queue.telemetry.prometheus().encode("utf-8")
            self._send(200, body,
                       "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/api/metrics":
            self._json(queue.telemetry.snapshot())
        elif path == "/api/trace":
            self._json(queue.telemetry.tracer.chrome_trace(
                {"source": "repro-serve", "live": True}
            ))
        elif path == "/api/status":
            self._json(queue.status())
        elif path == "/api/jobs":
            self._json({
                "jobs": [queue.job_payload(row) for row in queue.db.jobs()]
            })
        elif path.startswith("/api/jobs/"):
            rest = path[len("/api/jobs/"):]
            if "/artifacts/" in rest:
                job_id, name = rest.split("/artifacts/", 1)
                self._artifact(int(job_id), name)
            else:
                self._json(queue.job_payload(queue.db.job(int(rest))))
        elif path in ("/", "/index.html"):
            self._dashboard_index()
        elif path == "/ops.html":
            self._dashboard_ops()
        elif path == "/perf.html":
            self._dashboard_perf()
        elif path.startswith("/jobs/") and path.endswith(".html"):
            self._dashboard_job(int(path[len("/jobs/"):-len(".html")]))
        else:
            self._error(404, f"no route for {path}")

    def _route_post(self) -> None:
        if self.path.rstrip("/") != "/api/jobs":
            self._error(404, f"no POST route for {self.path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict) or "kind" not in body:
            raise ServiceError('request body must be {"kind": ..., '
                               '"params": {...}}')
        payload = self.server.queue.submit(body["kind"], body.get("params"))
        if payload["disposition"] != "cached":
            # the flow arrow joins this request's span to the job run
            self._flow_cid = payload["correlation_id"]
        self._json(payload, status=200 if payload["cached"] else 202)

    # ---------------------------------------------------------- dashboards
    def _artifact(self, job_id: int, name: str) -> None:
        path = self.server.queue.artifact_path(job_id, name)
        suffix = path.suffix.lower()
        content_type = _CONTENT_TYPES.get(suffix, "application/octet-stream")
        self._send(200, path.read_bytes(), content_type)

    def _dashboard_index(self) -> None:
        from repro.service.reports import render_index

        queue = self.server.queue
        payloads = [queue.job_payload(row) for row in queue.db.jobs()]
        self._html(render_index(queue.status(), payloads, ops_link=True))

    def _dashboard_ops(self) -> None:
        from repro.service.reports import render_ops

        queue = self.server.queue
        self._html(render_ops(queue.status(), queue.telemetry.snapshot()))

    def _dashboard_perf(self) -> None:
        # render_perf_html is a pure function of the ledger entries, which
        # is what keeps this route byte-identical to the static export's
        # perf.html (a property the tests pin).
        from repro.obs.history import read_history, render_perf_html

        queue = self.server.queue
        self._html(render_perf_html(read_history(queue.history_path)))

    def _dashboard_job(self, job_id: int) -> None:
        from repro.service.reports import render_job

        queue = self.server.queue
        payload = queue.job_payload(queue.db.job(job_id))
        # the live job page reads artifacts straight off disk, like the
        # static exporter does
        payload["_artifact_root"] = str(queue.artifact_dir(payload["key"]))

        def href(name: str) -> str:
            return f"/api/jobs/{job_id}/artifacts/{name}"

        self._html(render_job(payload, href))


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int], queue: JobQueue,
                 verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.queue = queue
        self.verbose = verbose
        self.log = get_logger("repro.service.http")

    def handle_error(self, request, client_address) -> None:
        # socketserver's default prints a traceback to stderr; keep even
        # transport-level failures (client hangups mid-write) structured
        self.log.warning(
            "connection error", client=str(client_address), exc_info=True,
        )


def serve(queue: JobQueue, host: str = "127.0.0.1", port: int = 0,
          verbose: bool = False) -> ServiceServer:
    """Bind the server (``port=0`` picks a free port; the bound one is on
    ``server.server_address``) and start the queue's workers.  The caller
    owns the accept loop: ``server.serve_forever()``."""
    try:
        server = ServiceServer((host, port), queue, verbose=verbose)
    except OSError as exc:
        raise ServiceError(f"cannot bind {host}:{port}: {exc}") from None
    queue.start()
    return server


def serve_background(queue: JobQueue, host: str = "127.0.0.1",
                     port: int = 0) -> tuple[ServiceServer, threading.Thread]:
    """In-process daemon for tests: accept loop on a thread."""
    server = serve(queue, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread


__all__ = [
    "ServiceHandler",
    "ServiceServer",
    "route_template",
    "serve",
    "serve_background",
]
