"""The daemon's HTTP surface: a JSON API plus the live dashboards.

Stdlib only (``http.server``); the daemon binds localhost by default and
is a trusted-network tool, not an internet-facing one.  The handler is
deliberately thin — every decision lives in :class:`JobQueue` — so the
API, the CLI client and the tests exercise identical semantics.

Routes::

    GET  /healthz                       liveness probe ("ok")
    GET  /api/status                    version, queue counts, cache stats
    GET  /api/jobs                      job ledger, newest first
    POST /api/jobs                      submit {"kind": ..., "params": {...}}
    GET  /api/jobs/<id>                 one job (spec, result, artifacts)
    GET  /api/jobs/<id>/artifacts/<p>   one stored artifact's bytes
    GET  /                              HTML dashboard index
    GET  /jobs/<id>.html                HTML job detail

Submission responses carry ``disposition``: ``new`` (queued),
``cached`` (content hash already served — stored artifacts, zero simulator
cycles), ``coalesced`` (an identical job is already in flight) or
``requeued`` (a previously failed key, retried).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceError
from repro.service.queue import JobQueue

_CONTENT_TYPES = {
    ".json": "application/json",
    ".jsonl": "application/jsonl",
    ".html": "text/html; charset=utf-8",
    ".txt": "text/plain; charset=utf-8",
    ".src": "text/plain; charset=utf-8",
}


class ServiceHandler(BaseHTTPRequestHandler):
    server: "ServiceServer"

    # ------------------------------------------------------------ plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _html(self, text: str, status: int = 200) -> None:
        self._send(status, text.encode("utf-8"), "text/html; charset=utf-8")

    def _error(self, status: int, message: str) -> None:
        self._json({"error": message}, status=status)

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib name
        try:
            self._route_get()
        except ServiceError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - stdlib name
        try:
            self._route_post()
        except ServiceError as exc:
            self._error(400, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))

    def _route_get(self) -> None:
        queue = self.server.queue
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, b"ok\n", "text/plain; charset=utf-8")
        elif path == "/api/status":
            self._json(queue.status())
        elif path == "/api/jobs":
            self._json({
                "jobs": [queue.job_payload(row) for row in queue.db.jobs()]
            })
        elif path.startswith("/api/jobs/"):
            rest = path[len("/api/jobs/"):]
            if "/artifacts/" in rest:
                job_id, name = rest.split("/artifacts/", 1)
                self._artifact(int(job_id), name)
            else:
                self._json(queue.job_payload(queue.db.job(int(rest))))
        elif path in ("/", "/index.html"):
            self._dashboard_index()
        elif path.startswith("/jobs/") and path.endswith(".html"):
            self._dashboard_job(int(path[len("/jobs/"):-len(".html")]))
        else:
            self._error(404, f"no route for {path}")

    def _route_post(self) -> None:
        if self.path.rstrip("/") != "/api/jobs":
            self._error(404, f"no POST route for {self.path}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from None
        if not isinstance(body, dict) or "kind" not in body:
            raise ServiceError('request body must be {"kind": ..., '
                               '"params": {...}}')
        payload = self.server.queue.submit(body["kind"], body.get("params"))
        self._json(payload, status=200 if payload["cached"] else 202)

    # ---------------------------------------------------------- dashboards
    def _artifact(self, job_id: int, name: str) -> None:
        path = self.server.queue.artifact_path(job_id, name)
        suffix = path.suffix.lower()
        content_type = _CONTENT_TYPES.get(suffix, "application/octet-stream")
        self._send(200, path.read_bytes(), content_type)

    def _dashboard_index(self) -> None:
        from repro.service.reports import render_index

        queue = self.server.queue
        payloads = [queue.job_payload(row) for row in queue.db.jobs()]
        self._html(render_index(queue.status(), payloads))

    def _dashboard_job(self, job_id: int) -> None:
        from repro.service.reports import render_job

        queue = self.server.queue
        payload = queue.job_payload(queue.db.job(job_id))
        # the live job page reads artifacts straight off disk, like the
        # static exporter does
        payload["_artifact_root"] = str(queue.artifact_dir(payload["key"]))

        def href(name: str) -> str:
            return f"/api/jobs/{job_id}/artifacts/{name}"

        self._html(render_job(payload, href))


class ServiceServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int], queue: JobQueue,
                 verbose: bool = False):
        super().__init__(address, ServiceHandler)
        self.queue = queue
        self.verbose = verbose


def serve(queue: JobQueue, host: str = "127.0.0.1", port: int = 0,
          verbose: bool = False) -> ServiceServer:
    """Bind the server (``port=0`` picks a free port; the bound one is on
    ``server.server_address``) and start the queue's workers.  The caller
    owns the accept loop: ``server.serve_forever()``."""
    try:
        server = ServiceServer((host, port), queue, verbose=verbose)
    except OSError as exc:
        raise ServiceError(f"cannot bind {host}:{port}: {exc}") from None
    queue.start()
    return server


def serve_background(queue: JobQueue, host: str = "127.0.0.1",
                     port: int = 0) -> tuple[ServiceServer, threading.Thread]:
    """In-process daemon for tests: accept loop on a thread."""
    server = serve(queue, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread


__all__ = ["ServiceHandler", "ServiceServer", "serve", "serve_background"]
