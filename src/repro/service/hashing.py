"""Canonical content-hash keys for served jobs.

A job's key must satisfy one property: two submissions get the same key
*iff* a correct daemon would produce byte-identical artifacts for both.
The key is a sha-256 over canonical JSON of

* the normalized job spec (kind + every parameter, defaults made explicit),
* a *fingerprint of every program input*: the canonical IR text of each
  workload's unannotated program (``unparse_program(declarations=True)`` —
  the same text the annotator's own round-trip tests pin) plus the machine
  config and problem-size metadata from ``WorkloadSpec.bench_meta()``,
* the package version (annotator or simulator changes change the bytes a
  run produces, so they must miss the cache).

Notably the *annotated* variants are not hashed: they are outputs, fully
determined by the unannotated IR and the annotation parameters.  Faults
specs and seeds are part of the normalized spec, so a fault-injected run
never aliases a clean one.

Following Stulova et al.'s property-caching argument, memoizing on this key
is also what makes verification cheap enough to be default-on for served
jobs: each content hash pays the invariant checker exactly once.
"""

from __future__ import annotations

import hashlib
import json

#: bump when the key material changes shape, so stale caches miss cleanly
HASH_VERSION = 1


def canonical_json(payload) -> str:
    """The one JSON serialization hashing ever uses: sorted keys, compact
    separators, ASCII only — byte-stable across python versions."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def workload_fingerprint(name: str) -> dict:
    """Fingerprint a built-in workload: canonical IR + config + scale."""
    from repro.lang.unparse import unparse_program
    from repro.workloads.base import get_workload

    spec = get_workload(name)
    return {
        "workload": name,
        "ir": unparse_program(spec.program, declarations=True),
        **spec.bench_meta(),
    }


def source_fingerprint(source: dict) -> dict:
    """Fingerprint an annotate job's submitted pseudocode source.

    The source text *is* the IR here (it parses to it deterministically),
    so it is hashed directly along with the machine shape and params.
    """
    return {
        "source": source.get("text", ""),
        "config": {
            "num_nodes": source.get("num_nodes", 4),
            "cache_size": source.get("cache_size", 8192),
            "block_size": source.get("block_size", 32),
            "assoc": source.get("assoc", 4),
        },
        "params": source.get("params") or {},
    }


def job_inputs(spec: dict) -> list[dict]:
    """The program-input fingerprints of a normalized job spec."""
    if spec.get("source") is not None:
        return [source_fingerprint(spec["source"])]
    if "benchmarks" in spec:
        return [workload_fingerprint(name) for name in spec["benchmarks"]]
    return [workload_fingerprint(spec["workload"])]


def job_key(spec: dict) -> str:
    """The content-hash cache key of a normalized job spec (hex sha-256)."""
    from repro.cliutil import package_version

    material = {
        "hash_version": HASH_VERSION,
        "code_version": package_version(),
        "spec": spec,
        "inputs": job_inputs(spec),
    }
    digest = hashlib.sha256(canonical_json(material).encode("utf-8"))
    return digest.hexdigest()


__all__ = [
    "HASH_VERSION",
    "canonical_json",
    "job_inputs",
    "job_key",
    "source_fingerprint",
    "workload_fingerprint",
]
