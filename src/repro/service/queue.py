"""The daemon's work queue: submission, worker threads, crash recovery.

:class:`JobQueue` owns the data directory — the sqlite ledger
(:mod:`repro.service.db`) plus one artifact directory per content hash
(``artifacts/<key>/``) — and drains queued jobs with worker threads.
Each worker claims the oldest queued job, executes it through
:func:`repro.service.jobs.execute_job` (which fans sweeps out through the
process pool), and records the outcome.

Cache semantics live at submission time, in the ledger's UNIQUE key:

* a key already ``done`` is a **cache hit** — no job is created, no
  simulator cycle runs, the response points at the stored artifacts;
* a key already ``queued``/``running`` **coalesces** — concurrent
  duplicate submissions share the single in-flight run;
* a key that previously ``failed`` is **requeued** — failures are not
  cached (they may have been environmental).

Crash recovery composes two ledgers: on startup :meth:`JobQueue.start`
moves jobs a killed daemon left ``running`` back to ``queued``
(:meth:`JobDb.recover`), and when such a job re-executes, the *sweep*
ledger inside its artifact directory resumes the run from its last
completed (benchmark, variant) — so the finished artifact set is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError, ServiceError
from repro.obs.logs import bind, get_logger
from repro.obs.telemetry import ServiceTelemetry
from repro.service.db import JobDb
from repro.service.hashing import job_key
from repro.service.jobs import (
    ExecContext,
    execute_job,
    list_artifacts,
    normalize_spec,
)

ARTIFACTS_DIR = "artifacts"


@dataclass
class ServiceConfig:
    """Daemon configuration (one per data dir)."""

    data_dir: str
    workers: int = 1
    pool_jobs: int = 1
    #: default-on verification for served jobs (submissions may opt out)
    verify_default: bool = True
    #: how many interrupted attempts before a job is abandoned
    max_retries: int = 3
    poll_interval: float = 0.05
    #: service metrics + tracing (``repro-serve --no-telemetry`` turns the
    #: collectors into no-ops; structured logging is independent of this)
    telemetry: bool = True
    #: perf-history ledger bench jobs append to and /perf.html renders
    #: (None = <data_dir>/perf_history.jsonl)
    history_path: str | None = None


@dataclass
class QueueStats:
    """In-memory since-start counters, reported by ``/api/status``."""

    submitted: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    requeued: int = 0
    executed: int = 0
    failed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, name: str) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "requeued": self.requeued,
            "executed": self.executed,
            "failed": self.failed,
        }


class JobQueue:
    """Everything the HTTP layer needs: submit, inspect, drain."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.db = JobDb(self.data_dir)
        self.artifacts_root = self.data_dir / ARTIFACTS_DIR
        self.artifacts_root.mkdir(parents=True, exist_ok=True)
        self.stats = QueueStats()
        self.started_at = time.time()
        self.telemetry = ServiceTelemetry(enabled=config.telemetry)
        self.log = get_logger("repro.service.queue")
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        from repro.obs.history import DEFAULT_LEDGER

        self.history_path = config.history_path or str(
            self.data_dir / DEFAULT_LEDGER
        )
        self._ctx = ExecContext(
            pool_jobs=config.pool_jobs, history_path=self.history_path
        )
        # submissions whose flow arrow still awaits its job run: job id ->
        # correlation ids (new/coalesced/requeued; cached hits never flow)
        self._flow_lock = threading.Lock()
        self._pending_flows: dict[int, list[int]] = {}

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Recover interrupted jobs, then start the worker threads."""
        requeued, abandoned = self.db.recover(self.config.max_retries)
        for row in requeued:
            self.log.warning(
                "job recovered", job=row["id"], kind=row["kind"],
                attempt=row["retries"] + 1,
            )
            self.telemetry.retry()
        for row in abandoned:
            self.log.error(
                "job abandoned", job=row["id"], kind=row["kind"],
                retries=row["retries"],
            )
        self.telemetry.set_queue_gauges(self.db.counts())
        for i in range(max(1, self.config.workers)):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-worker-{i}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout)
        self._workers.clear()

    def drain(self, timeout: float = 300.0) -> None:
        """Block until no job is queued or running (tests, --drain)."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            counts = self.db.counts()
            if counts["queued"] == 0 and counts["running"] == 0:
                return
            time.sleep(self.config.poll_interval)
        raise ServiceError(f"queue did not drain within {timeout}s")

    # ---------------------------------------------------------------- api
    def submit(self, kind: str, params: dict | None) -> dict:
        """Normalize, hash, and record one submission.

        Never executes anything inline: a fresh key is queued for the
        workers; a known key reuses the existing row (see module doc).
        """
        spec = normalize_spec(
            kind, params, verify_default=self.config.verify_default
        )
        key = job_key(spec)
        row, disposition = self.db.submit(
            key, kind, json.dumps(spec, sort_keys=True)
        )
        correlation = self.telemetry.next_id()
        self.stats.bump("submitted")
        if disposition == "cached":
            self.stats.bump("cache_hits")
        elif disposition == "coalesced":
            self.stats.bump("coalesced")
        elif disposition == "requeued":
            self.stats.bump("requeued")
        if disposition != "cached":
            with self._flow_lock:
                self._pending_flows.setdefault(row["id"], []).append(
                    correlation
                )
        self.telemetry.submission(disposition)
        if disposition == "requeued":
            self.telemetry.retry()
        self.telemetry.set_queue_gauges(self.db.counts())
        self.log.info(
            "job submitted", correlation=correlation, job=row["id"],
            kind=kind, disposition=disposition, key=row["key"][:12],
        )
        payload = self.job_payload(row)
        payload["disposition"] = disposition
        payload["cached"] = disposition == "cached"
        payload["correlation_id"] = correlation
        return payload

    def job_payload(self, row: dict) -> dict:
        """One job row as the API serves it (spec/result JSON decoded,
        artifact names attached)."""
        payload = dict(row)
        payload["spec"] = json.loads(row["spec"]) if row.get("spec") else None
        payload["result"] = (
            json.loads(row["result"]) if row.get("result") else None
        )
        payload["artifacts"] = (
            list_artifacts(str(self.artifact_dir(row["key"])))
            if row["state"] in ("done", "failed") else []
        )
        return payload

    def artifact_dir(self, key: str) -> Path:
        return self.artifacts_root / key

    def artifact_path(self, job_id: int, name: str) -> Path:
        """Resolve one artifact safely inside the job's directory."""
        row = self.db.job(job_id)
        root = self.artifact_dir(row["key"]).resolve()
        path = (root / name).resolve()
        if root not in path.parents and path != root:
            raise ServiceError(f"artifact name escapes the job directory: "
                               f"{name!r}")
        if not path.is_file():
            raise ServiceError(f"job {job_id} has no artifact {name!r}")
        return path

    def status(self) -> dict:
        from repro.cliutil import package_version

        return {
            "version": package_version(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": len(self._workers),
            "pool_jobs": self.config.pool_jobs,
            "verify_default": self.config.verify_default,
            "telemetry": self.telemetry.enabled,
            "jobs": self.db.counts(),
            "stats": self.stats.as_dict(),
        }

    # ------------------------------------------------------------- worker
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            row = self.db.claim_next()
            if row is None:
                self._stop.wait(self.config.poll_interval)
                continue
            self._execute_row(row)

    def _execute_row(self, row: dict) -> None:
        spec = json.loads(row["spec"])
        artifact_dir = str(self.artifact_dir(row["key"]))
        with self._flow_lock:
            correlations = self._pending_flows.pop(row["id"], [])
        self.telemetry.set_queue_gauges(self.db.counts())
        started = time.monotonic()
        with bind(job=row["id"], kind=row["kind"]):
            self.log.info("job started", attempt=row["retries"] + 1)
            with self.telemetry.tracer.run_job(
                row["id"], row["kind"], row["submitted_at"],
                row["started_at"] or time.time(), correlations,
            ):
                outcome = self._execute_inner(row, spec, artifact_dir)
            self.telemetry.job_finished(
                row["kind"], outcome, time.monotonic() - started
            )
        self.telemetry.set_queue_gauges(self.db.counts())

    def _execute_inner(self, row: dict, spec: dict,
                       artifact_dir: str) -> str:
        """Run the executor and record the outcome; returns the outcome
        label (``ok`` / ``failed`` / ``error``) for the metrics."""
        try:
            result = execute_job(spec, artifact_dir, self._ctx)
        except ReproError as exc:
            first = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
            self.db.fail(row["id"], f"{type(exc).__name__}: {first}")
            self.stats.bump("failed")
            # the one place a job failure is logged: id, error and the full
            # traceback as a structured field
            self.log.error("job failed", error=first,
                           error_type=type(exc).__name__, exc_info=True)
            return "failed"
        except Exception as exc:  # programming error: record it loudly,
            # keep the daemon alive for the other jobs
            self.db.fail(row["id"], f"internal error: {exc!r}")
            self.stats.bump("failed")
            self.log.exception("job internal error", error=repr(exc))
            return "error"
        self.db.finish(row["id"], json.dumps(result, sort_keys=True))
        self.stats.bump("executed")
        self.log.info("job done")
        return "ok"


__all__ = ["ARTIFACTS_DIR", "JobQueue", "QueueStats", "ServiceConfig"]
