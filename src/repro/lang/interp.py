"""Generator-based IR interpreter.

``Interpreter.kernel(node)`` returns a generator of machine events (see
:mod:`repro.machine.events`).  The machine interleaves these per-node
generators by virtual time, so functional execution and timing happen in one
pass: a data race in the program resolves in virtual-time order, exactly the
kind of timing-dependent behaviour the paper's Section 4.5 talks about.

Performance notes (this is the simulator's hot path):

* expressions whose subtree contains no *shared* load are evaluated by a
  plain recursive function — the generator machinery is only paid for
  references that can reach the memory system;
* purity is memoised per AST node (``id``-keyed; IR expression nodes are
  frozen and owned by the program, so ids are stable);
* compute cycles are accumulated in a per-node counter and attached to the
  next yielded event, so the machine charges realistic instruction counts
  without per-operation yields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import InterpError
from repro.lang.ast import (
    Annot,
    AnnotKind,
    AnnotTarget,
    Assign,
    Barrier,
    Bin,
    CallStmt,
    Comment,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Local,
    LockStmt,
    Param,
    Program,
    RangeSpec,
    Store,
    Un,
    UnlockStmt,
    While,
)
from repro.machine.events import (
    DIR_CHECK_IN,
    DIR_CHECK_OUT_S,
    DIR_CHECK_OUT_X,
    DIR_PREFETCH_S,
    DIR_PREFETCH_X,
    EV_BARRIER,
    EV_DIRECTIVE,
    EV_LOCK,
    EV_REF,
    EV_UNLOCK,
)
from repro.mem.labels import ArrayLabel, LabelTable
from repro.mem.layout import AddressSpace

_ANNOT_TO_DIR = {
    AnnotKind.CHECK_OUT_S: DIR_CHECK_OUT_S,
    AnnotKind.CHECK_OUT_X: DIR_CHECK_OUT_X,
    AnnotKind.CHECK_IN: DIR_CHECK_IN,
    AnnotKind.PREFETCH_S: DIR_PREFETCH_S,
    AnnotKind.PREFETCH_X: DIR_PREFETCH_X,
}

_BIN_FUNCS: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "and": lambda a, b: 1 if (a and b) else 0,
    "or": lambda a, b: 1 if (a or b) else 0,
    "min": min,
    "max": max,
}

_UN_FUNCS: dict[str, Callable[[float], float]] = {
    "neg": lambda a: -a,
    "not": lambda a: 0 if a else 1,
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "exp": math.exp,
    "sin": math.sin,
    "cos": math.cos,
}


class SharedStore:
    """Shared address space + labels + functional value arrays for a program."""

    def __init__(self, program: Program, block_size: int = 32):
        self.program = program
        self.space = AddressSpace(block_size=block_size)
        self.labels = LabelTable()
        self.values: dict[str, np.ndarray] = {}
        for decl in program.shared_arrays():
            nbytes = decl.elem_size
            for extent in decl.shape:
                nbytes *= extent
            region = self.space.allocate(decl.name, nbytes)
            self.labels.add(
                ArrayLabel(
                    region=region,
                    shape=decl.shape,
                    elem_size=decl.elem_size,
                    order=decl.order,
                )
            )
            self.values[decl.name] = np.zeros(
                int(np.prod(decl.shape)), dtype=np.float64
            )

    def label(self, name: str) -> ArrayLabel:
        return self.labels.get(name)

    def array(self, name: str) -> np.ndarray:
        """Flat value array (reshape via the label's shape/order if needed)."""
        return self.values[name]

    def as_ndarray(self, name: str) -> np.ndarray:
        lab = self.labels.get(name)
        flat = self.values[name]
        if lab.order == "C":
            return flat.reshape(lab.shape)
        return flat.reshape(tuple(reversed(lab.shape))).transpose()

    def snapshot_values(self) -> dict[str, list[float]]:
        """All array values as plain lists (JSON-able, for barrier
        checkpoints).  Restoring them with :meth:`restore_values` after a
        resume fast-forward corrects any drift a racy epoch replay left."""
        return {name: arr.tolist() for name, arr in self.values.items()}

    def restore_values(self, values: dict[str, list[float]]) -> None:
        for name, vals in values.items():
            arr = self.values[name]
            arr[:] = np.asarray(vals, dtype=np.float64)


@dataclass(slots=True)
class _Ctx:
    """Per-kernel mutable state."""

    node: int
    params: dict[str, float]
    frames: list[dict[str, float]] = field(default_factory=lambda: [{}])
    compute: int = 0
    priv: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def frame(self) -> dict[str, float]:
        return self.frames[-1]

    def take(self) -> int:
        out = self.compute
        self.compute = 0
        return out


class Interpreter:
    def __init__(
        self,
        program: Program,
        store: SharedStore | None = None,
        params_fn: Callable[[int], dict] | None = None,
        block_size: int = 32,
    ):
        self.program = program
        self.store = store or SharedStore(program, block_size=block_size)
        self.params_fn = params_fn or (lambda node: {})
        self._pure_memo: dict[int, bool] = {}

    # ------------------------------------------------------------- purity
    def _is_pure(self, expr: Expr) -> bool:
        """True if evaluating ``expr`` can never touch shared memory."""
        memo = self._pure_memo
        key = id(expr)
        hit = memo.get(key)
        if hit is not None:
            return hit
        t = type(expr)
        if t in (Const, Local, Param):
            result = True
        elif t is Bin:
            result = self._is_pure(expr.left) and self._is_pure(expr.right)
        elif t is Un:
            result = self._is_pure(expr.operand)
        elif t is Load:
            result = self.program.array(expr.array).private and all(
                self._is_pure(i) for i in expr.indices
            )
        else:
            raise InterpError(f"unknown expression node {expr!r}")
        memo[key] = result
        return result

    # ---------------------------------------------------------- fast eval
    def _eval_fast(self, ctx: _Ctx, expr: Expr) -> float:
        t = type(expr)
        if t is Const:
            return expr.value
        if t is Local:
            try:
                return ctx.frame[expr.name]
            except KeyError:
                raise InterpError(
                    f"node {ctx.node}: unbound local {expr.name!r}"
                ) from None
        if t is Param:
            try:
                return ctx.params[expr.name]
            except KeyError:
                raise InterpError(
                    f"node {ctx.node}: unbound parameter {expr.name!r}"
                ) from None
        if t is Bin:
            left = self._eval_fast(ctx, expr.left)
            right = self._eval_fast(ctx, expr.right)
            ctx.compute += 1
            try:
                return _BIN_FUNCS[expr.op](left, right)
            except ZeroDivisionError:
                raise InterpError(f"division by zero in {expr.op!r}") from None
        if t is Un:
            val = self._eval_fast(ctx, expr.operand)
            ctx.compute += 1
            return _UN_FUNCS[expr.op](val)
        if t is Load:  # private load (purity guaranteed by caller)
            idxs = tuple(int(self._eval_fast(ctx, i)) for i in expr.indices)
            ctx.compute += 1
            return float(self._priv_array(ctx, expr.array)[self._flat(expr.array, idxs)])
        raise InterpError(f"unknown expression node {expr!r}")

    # ----------------------------------------------------------- slow eval
    def _eval(self, ctx: _Ctx, expr: Expr, pc: int):
        """Generator evaluation; yields machine events, returns the value."""
        if self._is_pure(expr):
            return self._eval_fast(ctx, expr)
        t = type(expr)
        if t is Bin:
            left = yield from self._eval(ctx, expr.left, pc)
            right = yield from self._eval(ctx, expr.right, pc)
            ctx.compute += 1
            try:
                return _BIN_FUNCS[expr.op](left, right)
            except ZeroDivisionError:
                raise InterpError(f"division by zero in {expr.op!r}") from None
        if t is Un:
            val = yield from self._eval(ctx, expr.operand, pc)
            ctx.compute += 1
            return _UN_FUNCS[expr.op](val)
        if t is Load:  # shared load
            idxs = []
            for index_expr in expr.indices:
                idx = yield from self._eval(ctx, index_expr, pc)
                idxs.append(int(idx))
            label = self.store.label(expr.array)
            flat = label.flat_index(tuple(idxs))
            addr = label.addr_of_flat(flat)
            ctx.compute += 1
            yield (EV_REF, ctx.take(), addr, False, pc)
            return float(self.store.values[expr.array][flat])
        raise InterpError(f"unexpected impure node {expr!r}")

    # ------------------------------------------------------------- helpers
    def _flat(self, name: str, idxs: tuple[int, ...]) -> int:
        decl = self.program.array(name)
        flat = 0
        if decl.order == "C":
            for idx, extent in zip(idxs, decl.shape):
                if not 0 <= idx < extent:
                    raise InterpError(f"{name}{list(idxs)}: index out of bounds")
                flat = flat * extent + idx
        else:
            for idx, extent in zip(reversed(idxs), reversed(decl.shape)):
                if not 0 <= idx < extent:
                    raise InterpError(f"{name}{list(idxs)}: index out of bounds")
                flat = flat * extent + idx
        return flat

    def _priv_array(self, ctx: _Ctx, name: str) -> np.ndarray:
        arr = ctx.priv.get(name)
        if arr is None:
            decl = self.program.array(name)
            arr = np.zeros(int(np.prod(decl.shape)), dtype=np.float64)
            ctx.priv[name] = arr
        return arr

    def _target_addrs(self, ctx: _Ctx, target: AnnotTarget, pc: int) -> list[int]:
        """Concrete element addresses covered by an annotation target."""
        decl = self.program.array(target.array)
        if decl.private:
            raise InterpError(
                f"CICO annotation on private array {target.array!r}"
            )
        # CICO annotations are semantics-free hints and "need not be placed
        # perfectly accurately" (Section 4.5): hoisting can widen a guarded
        # index expression past the array edge, so indices are clipped to
        # the array bounds rather than faulting.
        per_dim: list[list[int]] = []
        for spec, extent in zip(target.specs, decl.shape):
            if isinstance(spec, RangeSpec):
                lo = int(self._eval_fast(ctx, spec.lo))
                hi = int(self._eval_fast(ctx, spec.hi))
                step = int(self._eval_fast(ctx, spec.step))
                if step <= 0:
                    raise InterpError(f"annotation range step {step} <= 0")
                values = [v for v in range(lo, hi + 1, step) if 0 <= v < extent]
            else:
                value = int(self._eval_fast(ctx, spec))
                values = [value] if 0 <= value < extent else []
            if not values:
                return []  # entire target out of range: ignore the hint
            per_dim.append(values)
        label = self.store.label(target.array)
        addrs: list[int] = []
        idx = [0] * len(per_dim)

        def rec(dim: int) -> None:
            if dim == len(per_dim):
                addrs.append(label.addr_of(tuple(idx)))
                return
            for value in per_dim[dim]:
                idx[dim] = value
                rec(dim + 1)

        rec(0)
        return addrs

    # ------------------------------------------------------------ statements
    def _exec_block(self, ctx: _Ctx, body: list):
        for stmt in body:
            yield from self._exec(ctx, stmt)

    def _exec(self, ctx: _Ctx, stmt):
        t = type(stmt)
        if t is Assign:
            if self._is_pure(stmt.expr):
                value = self._eval_fast(ctx, stmt.expr)
            else:
                value = yield from self._eval(ctx, stmt.expr, stmt.pc)
            ctx.frame[stmt.name] = value
            ctx.compute += 1
            return
        if t is Store:
            idxs = []
            for index_expr in stmt.indices:
                if self._is_pure(index_expr):
                    idxs.append(int(self._eval_fast(ctx, index_expr)))
                else:
                    idx = yield from self._eval(ctx, index_expr, stmt.pc)
                    idxs.append(int(idx))
            if self._is_pure(stmt.expr):
                value = self._eval_fast(ctx, stmt.expr)
            else:
                value = yield from self._eval(ctx, stmt.expr, stmt.pc)
            decl = self.program.array(stmt.array)
            if decl.private:
                ctx.compute += 1
                self._priv_array(ctx, stmt.array)[self._flat(stmt.array, tuple(idxs))] = value
                return
            label = self.store.label(stmt.array)
            flat = label.flat_index(tuple(idxs))
            addr = label.addr_of_flat(flat)
            ctx.compute += 1
            yield (EV_REF, ctx.take(), addr, True, stmt.pc)
            self.store.values[stmt.array][flat] = value
            return
        if t is For:
            lo = int(self._value(ctx, stmt.lo, stmt.pc))
            hi = int(self._value(ctx, stmt.hi, stmt.pc))
            step = int(self._value(ctx, stmt.step, stmt.pc))
            if step <= 0:
                raise InterpError(f"for-loop step {step} <= 0 at pc {stmt.pc}")
            frame = ctx.frame
            for value in range(lo, hi + 1, step):
                frame[stmt.var] = value
                ctx.compute += 1
                yield from self._exec_block(ctx, stmt.body)
            return
        if t is If:
            if self._is_pure(stmt.cond):
                cond = self._eval_fast(ctx, stmt.cond)
            else:
                cond = yield from self._eval(ctx, stmt.cond, stmt.pc)
            ctx.compute += 1
            yield from self._exec_block(ctx, stmt.then if cond else stmt.els)
            return
        if t is While:
            while True:
                if self._is_pure(stmt.cond):
                    cond = self._eval_fast(ctx, stmt.cond)
                else:
                    cond = yield from self._eval(ctx, stmt.cond, stmt.pc)
                ctx.compute += 1
                if not cond:
                    return
                yield from self._exec_block(ctx, stmt.body)
        if t is Barrier:
            yield (EV_BARRIER, ctx.take(), stmt.pc)
            return
        if t is Annot:
            addrs: list[int] = []
            for target in stmt.targets:
                addrs.extend(self._target_addrs(ctx, target, stmt.pc))
            yield (EV_DIRECTIVE, ctx.take(), _ANNOT_TO_DIR[stmt.kind], addrs, stmt.pc)
            return
        if t is LockStmt:
            addr = self._lock_addr(ctx, stmt)
            yield (EV_LOCK, ctx.take(), addr, stmt.pc)
            return
        if t is UnlockStmt:
            addr = self._lock_addr(ctx, stmt)
            yield (EV_UNLOCK, ctx.take(), addr, stmt.pc)
            return
        if t is CallStmt:
            func = self.program.function(stmt.func)
            if len(func.params) != len(stmt.args):
                raise InterpError(
                    f"call {stmt.func!r}: expected {len(func.params)} args, "
                    f"got {len(stmt.args)}"
                )
            # Evaluate arguments (may touch shared memory).
            values = []
            for arg in stmt.args:
                if self._is_pure(arg):
                    values.append(self._eval_fast(ctx, arg))
                else:
                    val = yield from self._eval(ctx, arg, stmt.pc)
                    values.append(val)
            ctx.frames.append(dict(zip(func.params, values)))
            try:
                yield from self._exec_block(ctx, func.body)
            finally:
                ctx.frames.pop()
            return
        if t is Comment:
            return
        raise InterpError(f"unknown statement {stmt!r}")

    def _value(self, ctx: _Ctx, expr: Expr, pc: int) -> float:
        """Evaluate an expression that must be pure (loop bounds, lock idx)."""
        if not self._is_pure(expr):
            raise InterpError(
                f"expression at pc {pc} must not touch shared memory"
            )
        return self._eval_fast(ctx, expr)

    def _lock_addr(self, ctx: _Ctx, stmt) -> int:
        idxs = tuple(int(self._value(ctx, e, stmt.pc)) for e in stmt.indices)
        return self.store.label(stmt.array).addr_of(idxs)

    # ---------------------------------------------------------------- kernel
    def kernel(self, node: int):
        """Machine-event generator for one node."""
        params = {"me": node}
        params.update(self.params_fn(node))
        ctx = _Ctx(node=node, params=params)
        entry = self.program.function(self.program.entry)
        yield from self._exec_block(ctx, entry.body)
        if ctx.compute:
            yield (EV_REF, ctx.take(), -1, False, -1)
