"""AST rewriting utilities for the annotator.

The annotator never mutates the traced program: it clones it (keeping the
original statement pcs so trace records still resolve) and inserts annotation
statements into the clone.  Inserted statements get fresh pcs past
``program.max_pc``.
"""

from __future__ import annotations

import copy

from repro.errors import LangError
from repro.lang.ast import Program, Stmt, fresh_pcs, walk_stmts
from repro.lang.loops import StmtIndex


def clone_program(program: Program) -> Program:
    """Deep copy preserving statement pcs."""
    return copy.deepcopy(program)


def insert_before(program: Program, index: StmtIndex, pc: int, new: list[Stmt]) -> None:
    """Insert ``new`` immediately before the statement with ``pc``.

    The caller's ``index`` must describe ``program``'s current AST; it is
    invalidated by the insertion (block positions shift) — rebuild it before
    further pc-based edits.
    """
    loc = index.locate(pc)
    fresh_pcs(program, new)
    loc.block[loc.index : loc.index] = new


def insert_after(program: Program, index: StmtIndex, pc: int, new: list[Stmt]) -> None:
    loc = index.locate(pc)
    fresh_pcs(program, new)
    loc.block[loc.index + 1 : loc.index + 1] = new


def insert_at_function_start(program: Program, func: str, new: list[Stmt]) -> None:
    fresh_pcs(program, new)
    program.function(func).body[0:0] = new


def insert_at_function_end(program: Program, func: str, new: list[Stmt]) -> None:
    fresh_pcs(program, new)
    program.function(func).body.extend(new)


def replace_stmt(program: Program, index: StmtIndex, pc: int, new: list[Stmt]) -> None:
    loc = index.locate(pc)
    fresh_pcs(program, new)
    loc.block[loc.index : loc.index + 1] = new


def count_stmts(program: Program) -> int:
    return sum(
        1 for func in program.functions.values() for _ in walk_stmts(func.body)
    )
