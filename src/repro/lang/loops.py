"""Loop / statement structure analysis.

The annotator needs to answer static questions like:

* where in the AST is the statement with pc *p* (its block, position, and
  enclosing loop stack)?
* is this index expression exactly the induction variable of that loop
  (possibly offset by a constant)?
* is this expression invariant with respect to a loop?

These power the Section 4.3 presentation step (hoisting per-iteration
annotations out of loops as range annotations, generating new loops for
strided remainders) and the Section 4.2 placement step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LangError
from repro.lang.ast import (
    Bin,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Local,
    Param,
    Program,
    Stmt,
    Un,
    While,
    child_blocks,
)


@dataclass(frozen=True)
class StmtLocation:
    """Where one statement lives inside the AST."""

    stmt: Stmt
    func: str
    block: list  # the statement list that directly contains it
    index: int  # position within ``block``
    loops: tuple[For, ...]  # enclosing For loops, outermost first


class StmtIndex:
    """pc -> :class:`StmtLocation` for a whole program.

    Rebuild after mutating the AST (insertions shift block indices).
    """

    def __init__(self, program: Program):
        self.program = program
        self._by_pc: dict[int, StmtLocation] = {}
        for func in program.functions.values():
            self._walk(func.name, func.body, ())

    def _walk(self, func: str, block: list, loops: tuple[For, ...]) -> None:
        for index, stmt in enumerate(block):
            if stmt.pc >= 0:
                self._by_pc[stmt.pc] = StmtLocation(
                    stmt=stmt, func=func, block=block, index=index, loops=loops
                )
            inner = loops + (stmt,) if isinstance(stmt, For) else loops
            for child in child_blocks(stmt):
                self._walk(func, child, inner)

    def locate(self, pc: int) -> StmtLocation:
        try:
            return self._by_pc[pc]
        except KeyError:
            raise LangError(f"no statement with pc {pc}") from None

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    def pcs(self) -> list[int]:
        return sorted(self._by_pc)


# ---------------------------------------------------------------- expression
def expr_locals(expr: Expr) -> set[str]:
    """Names of local variables referenced by ``expr``."""
    out: set[str] = set()
    _collect(expr, out, None)
    return out


def expr_params(expr: Expr) -> set[str]:
    """Names of runtime parameters referenced by ``expr``."""
    out: set[str] = set()
    _collect(expr, None, out)
    return out


def _collect(expr: Expr, locals_out: set | None, params_out: set | None) -> None:
    t = type(expr)
    if t is Local and locals_out is not None:
        locals_out.add(expr.name)
    elif t is Param and params_out is not None:
        params_out.add(expr.name)
    elif t is Bin:
        _collect(expr.left, locals_out, params_out)
        _collect(expr.right, locals_out, params_out)
    elif t is Un:
        _collect(expr.operand, locals_out, params_out)
    elif t is Load:
        for index in expr.indices:
            _collect(index, locals_out, params_out)


def is_invariant(expr: Expr, loop: For) -> bool:
    """Conservatively: invariant iff it does not read the induction var."""
    return loop.var not in expr_locals(expr)


def match_loop_index(expr: Expr, loop: For) -> int | None:
    """If ``expr`` is ``var`` or ``var +/- const`` for the loop's induction
    variable, return the constant offset; else ``None``."""
    if isinstance(expr, Local) and expr.name == loop.var:
        return 0
    if isinstance(expr, Bin) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        if (
            isinstance(left, Local)
            and left.name == loop.var
            and isinstance(right, Const)
        ):
            off = right.value
            return int(off) if expr.op == "+" else -int(off)
        if (
            expr.op == "+"
            and isinstance(right, Local)
            and right.name == loop.var
            and isinstance(left, Const)
        ):
            return int(left.value)
    return None


def const_value(expr: Expr) -> int | None:
    """Value of a constant expression, else None."""
    if isinstance(expr, Const):
        value = expr.value
        return int(value) if float(value).is_integer() else None
    return None
