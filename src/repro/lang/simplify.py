"""Constant folding / algebraic cleanup for IR expressions.

Annotation hoisting builds expressions mechanically (``lo + 1``,
``(j - 1 + N) % N`` with concrete N, ``i + 0``), and the presenter wants the
printed annotations to read the way the paper's do.  This pass folds
constants and removes arithmetic identities; it never changes a value.

Folding rules (all value-preserving, no float surprises: ``/`` folds only
when both sides are constant):

* ``Const op Const``  ->  ``Const``
* ``x + 0``, ``0 + x``, ``x - 0``  ->  ``x``
* ``x * 1``, ``1 * x``             ->  ``x``
* ``x * 0``, ``0 * x``             ->  ``0``
* ``neg(Const)``                   ->  ``Const``
"""

from __future__ import annotations

import math

from repro.lang.ast import (
    Annot,
    AnnotTarget,
    Bin,
    Const,
    Expr,
    Load,
    Program,
    RangeSpec,
    Stmt,
    Un,
    walk_stmts,
)

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "/": lambda a, b: a / b,
    "min": min,
    "max": max,
}

_UN_FOLDABLE = {
    "neg": lambda a: -a,
    "abs": abs,
    "floor": math.floor,
}


def _is_zero(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value == 0


def _is_one(expr: Expr) -> bool:
    return isinstance(expr, Const) and expr.value == 1


def simplify_expr(expr: Expr) -> Expr:
    """Return a simplified, value-equal expression."""
    t = type(expr)
    if t is Bin:
        left = simplify_expr(expr.left)
        right = simplify_expr(expr.right)
        if (
            isinstance(left, Const)
            and isinstance(right, Const)
            and expr.op in _FOLDABLE
        ):
            try:
                value = _FOLDABLE[expr.op](left.value, right.value)
            except ZeroDivisionError:
                return Bin(expr.op, left, right)
            # Keep ints integral.
            if isinstance(value, float) and value.is_integer() and (
                isinstance(left.value, int) and isinstance(right.value, int)
                and expr.op != "/"
            ):
                value = int(value)
            return Const(value)
        if expr.op == "+":
            if _is_zero(left):
                return right
            if _is_zero(right):
                return left
        if expr.op == "-" and _is_zero(right):
            return left
        if expr.op == "*":
            if _is_one(left):
                return right
            if _is_one(right):
                return left
            if _is_zero(left) or _is_zero(right):
                return Const(0)
        return Bin(expr.op, left, right)
    if t is Un:
        operand = simplify_expr(expr.operand)
        if isinstance(operand, Const) and expr.op in _UN_FOLDABLE:
            return Const(_UN_FOLDABLE[expr.op](operand.value))
        return Un(expr.op, operand)
    if t is Load:
        return Load(expr.array, tuple(simplify_expr(i) for i in expr.indices))
    return expr


def simplify_spec(spec):
    if isinstance(spec, RangeSpec):
        return RangeSpec(
            lo=simplify_expr(spec.lo),
            hi=simplify_expr(spec.hi),
            step=simplify_expr(spec.step),
        )
    return simplify_expr(spec)


def simplify_annotations(program: Program) -> Program:
    """Simplify every annotation target's index expressions, in place."""
    for func in program.functions.values():
        for stmt in walk_stmts(func.body):
            if isinstance(stmt, Annot):
                stmt.targets = tuple(
                    AnnotTarget(
                        array=target.array,
                        specs=tuple(simplify_spec(s) for s in target.specs),
                    )
                    for target in stmt.targets
                )
    return program
