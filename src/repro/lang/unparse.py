"""Pretty-printer producing the paper's pseudocode style.

The annotated matrix multiply in Section 4.4 looks like::

    for i = 1 to N do
        for k = Lkp to Ukp do
            check_out_S A[i, k]
            t = A[i, k]
            check_out_S B[k, Ljp:Ujp]
            for j = Ljp to Ujp do
                check_out_X C[i, j]
                /*** Data Race on C[i, j] ***/
                C[i, j] = C[i, j] + t * B[k, j]
                check_in C[i, j]
            od
            check_in B[k, Ljp:Ujp]
        od
    od

``unparse_program`` produces exactly this shape; ``unparse_with_map`` also
returns a pc -> line-number mapping (what a compiler's line table would be).
"""

from __future__ import annotations

from repro.errors import UnparseError
from repro.lang.ast import (
    Annot,
    AnnotTarget,
    Assign,
    Barrier,
    Bin,
    CallStmt,
    Comment,
    Const,
    Expr,
    For,
    If,
    Load,
    Local,
    LockStmt,
    Param,
    Program,
    RangeSpec,
    Store,
    Un,
    UnlockStmt,
    While,
)

_PREC = {
    "or": 1,
    "and": 2,
    "<": 3, "<=": 3, ">": 3, ">=": 3, "==": 3, "!=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "//": 5, "%": 5,
}
_UNARY = {"neg": "-", "not": "not "}


def expr_str(expr: Expr, prec: int = 0) -> str:
    t = type(expr)
    if t is Const:
        value = expr.value
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)
    if t is Param or t is Local:
        return expr.name
    if t is Load:
        inner = ", ".join(expr_str(i) for i in expr.indices)
        return f"{expr.array}[{inner}]"
    if t is Un:
        if expr.op in _UNARY:
            inner = _UNARY[expr.op] + expr_str(expr.operand, 6)
            return f"({inner})" if prec >= 6 else inner
        return f"{expr.op}({expr_str(expr.operand)})"
    if t is Bin:
        if expr.op in ("min", "max"):
            return f"{expr.op}({expr_str(expr.left)}, {expr_str(expr.right)})"
        p = _PREC[expr.op]
        left = expr_str(expr.left, p)
        right = expr_str(expr.right, p + 1)  # left-associative
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec > p else text
    raise UnparseError(f"cannot print expression {expr!r}")


def _spec_str(spec) -> str:
    if isinstance(spec, RangeSpec):
        lo, hi = expr_str(spec.lo), expr_str(spec.hi)
        if isinstance(spec.step, Const) and spec.step.value == 1:
            return f"{lo}:{hi}"
        return f"{lo}:{hi}:{expr_str(spec.step)}"
    return expr_str(spec)


def target_str(target: AnnotTarget) -> str:
    inner = ", ".join(_spec_str(spec) for spec in target.specs)
    return f"{target.array}[{inner}]"


class _Printer:
    def __init__(self, indent: str = "    "):
        self.lines: list[str] = []
        self.pc_to_line: dict[int, int] = {}
        self.indent_str = indent
        self.depth = 0

    def emit(self, text: str, pc: int = -1) -> None:
        self.lines.append(self.indent_str * self.depth + text)
        if pc >= 0 and pc not in self.pc_to_line:
            self.pc_to_line[pc] = len(self.lines)

    def block(self, body) -> None:
        self.depth += 1
        for stmt in body:
            self.stmt(stmt)
        self.depth -= 1

    def stmt(self, stmt) -> None:
        t = type(stmt)
        if t is Assign:
            self.emit(f"{stmt.name} = {expr_str(stmt.expr)}", stmt.pc)
        elif t is Store:
            idx = ", ".join(expr_str(i) for i in stmt.indices)
            self.emit(f"{stmt.array}[{idx}] = {expr_str(stmt.expr)}", stmt.pc)
        elif t is For:
            head = (
                f"for {stmt.var} = {expr_str(stmt.lo)} to {expr_str(stmt.hi)}"
            )
            if not (isinstance(stmt.step, Const) and stmt.step.value == 1):
                head += f" step {expr_str(stmt.step)}"
            self.emit(head + " do", stmt.pc)
            self.block(stmt.body)
            self.emit("od")
        elif t is While:
            self.emit(f"while {expr_str(stmt.cond)} do", stmt.pc)
            self.block(stmt.body)
            self.emit("od")
        elif t is If:
            self.emit(f"if {expr_str(stmt.cond)} then", stmt.pc)
            self.block(stmt.then)
            if stmt.els:
                self.emit("else")
                self.block(stmt.els)
            self.emit("fi")
        elif t is Barrier:
            label = f"  /* {stmt.label} */" if stmt.label else ""
            self.emit("barrier" + label, stmt.pc)
        elif t is Annot:
            targets = ", ".join(target_str(tg) for tg in stmt.targets)
            self.emit(f"{stmt.kind.value} {targets}", stmt.pc)
        elif t is Comment:
            self.emit(f"/*** {stmt.text} ***/", stmt.pc)
        elif t is LockStmt:
            idx = ", ".join(expr_str(i) for i in stmt.indices)
            self.emit(f"lock {stmt.array}[{idx}]", stmt.pc)
        elif t is UnlockStmt:
            idx = ", ".join(expr_str(i) for i in stmt.indices)
            self.emit(f"unlock {stmt.array}[{idx}]", stmt.pc)
        elif t is CallStmt:
            args = ", ".join(expr_str(a) for a in stmt.args)
            self.emit(f"call {stmt.func}({args})", stmt.pc)
        else:
            raise UnparseError(f"cannot print statement {stmt!r}")


def unparse_with_map(
    program: Program, declarations: bool = False
) -> tuple[str, dict[int, int]]:
    """Program text plus a pc -> 1-based line-number map.

    With ``declarations=True`` the text begins with ``array`` header lines
    (name, shape, element size, order, private flag) so the result is fully
    self-describing and :func:`repro.lang.parse.parse_program` can rebuild
    the program from the text alone."""
    printer = _Printer()
    if declarations:
        for decl in program.arrays.values():
            shape = ", ".join(str(n) for n in decl.shape)
            extra = " private" if decl.private else ""
            printer.emit(
                f"array {decl.name}[{shape}] elem={decl.elem_size} "
                f"order={decl.order}{extra}"
            )
        if program.arrays:
            printer.emit("")
    multi = len(program.functions) > 1
    for index, func in enumerate(program.functions.values()):
        if multi:
            if index:
                printer.emit("")
            params = ", ".join(func.params)
            printer.emit(f"func {func.name}({params}):")
            printer.block(func.body)
        else:
            for stmt in func.body:
                printer.stmt(stmt)
    return "\n".join(printer.lines) + "\n", printer.pc_to_line


def unparse_program(program: Program, declarations: bool = False) -> str:
    return unparse_with_map(program, declarations=declarations)[0]
