"""Control-flow graph over IR statements.

Cachier parses the target program and builds "its abstract syntax tree and
control flow graph" (Section 3.4).  The CFG's job in the annotator is epoch
*region* discovery: which statements execute between one barrier and the
next.  Static epochs are keyed by ``(opening barrier pc, closing barrier
pc)`` — the same key the trace derives from its barrier records — with ``-1``
standing for program entry/exit.

Nodes are statement pcs plus two virtual nodes ``ENTRY`` (-1) and ``EXIT``
(-2).  ``CallStmt`` edges descend into the callee's body and return, so an
epoch that spans multiple functions is handled (the paper places annotations
at the starts/ends of the functions a spanning epoch calls into).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import LangError
from repro.lang.ast import (
    Barrier,
    CallStmt,
    For,
    Function,
    If,
    Program,
    Stmt,
    While,
)

ENTRY = -1
EXIT = -2


@dataclass
class Cfg:
    program: Program
    succ: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    pred: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    barrier_pcs: set[int] = field(default_factory=set)
    stmt_by_pc: dict[int, Stmt] = field(default_factory=dict)

    def add_edge(self, a: int, b: int) -> None:
        self.succ[a].add(b)
        self.pred[b].add(a)

    # ------------------------------------------------------------- regions
    def epoch_regions(self) -> dict[tuple[int, int], set[int]]:
        """Map (opening, closing) barrier-pc pairs to the set of statement
        pcs that can execute between those two barriers.

        A region may appear under several keys when control flow permits
        multiple closings (e.g. a barrier inside a loop: the region between
        iterations closes at the same barrier; the final iteration closes at
        the next one).
        """
        sources = [ENTRY] + sorted(self.barrier_pcs)
        regions: dict[tuple[int, int], set[int]] = {}
        for source in sources:
            reached: set[int] = set()
            closers: set[int] = set()
            frontier = list(self.succ.get(source, ()))
            seen = set(frontier)
            while frontier:
                pc = frontier.pop()
                if pc == EXIT:
                    closers.add(EXIT)
                    continue
                if pc in self.barrier_pcs:
                    closers.add(pc)
                    continue
                reached.add(pc)
                for nxt in self.succ.get(pc, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            for closer in closers:
                key = (
                    source if source != ENTRY else -1,
                    closer if closer != EXIT else -1,
                )
                regions.setdefault(key, set()).update(reached)
        return regions


def build_cfg(program: Program) -> Cfg:
    """CFG of the whole program starting at its entry function."""
    cfg = Cfg(program=program)
    entry = program.function(program.entry)
    _register_stmts(cfg, program)
    heads, tails = _wire_block(cfg, program, entry.body, visited=(program.entry,))
    for head in heads:
        cfg.add_edge(ENTRY, head)
    for tail in tails:
        cfg.add_edge(tail, EXIT)
    if not entry.body:
        cfg.add_edge(ENTRY, EXIT)
    return cfg


def _register_stmts(cfg: Cfg, program: Program) -> None:
    from repro.lang.ast import walk_stmts

    for func in program.functions.values():
        for stmt in walk_stmts(func.body):
            if stmt.pc < 0:
                raise LangError("build_cfg requires a numbered program")
            cfg.stmt_by_pc[stmt.pc] = stmt
            if isinstance(stmt, Barrier):
                cfg.barrier_pcs.add(stmt.pc)


def _wire_block(
    cfg: Cfg, program: Program, body: list[Stmt], visited: tuple[str, ...]
) -> tuple[list[int], list[int]]:
    """Wire a statement list; return (entry pcs, exit pcs) of the block."""
    heads: list[int] = []
    tails: list[int] = []
    for stmt in body:
        s_heads, s_tails = _wire_stmt(cfg, program, stmt, visited)
        if not heads:
            heads = s_heads
        for tail in tails:
            for head in s_heads:
                cfg.add_edge(tail, head)
        tails = s_tails
    return heads, tails


def _wire_stmt(
    cfg: Cfg, program: Program, stmt: Stmt, visited: tuple[str, ...]
) -> tuple[list[int], list[int]]:
    pc = stmt.pc
    if isinstance(stmt, (For, While)):
        b_heads, b_tails = _wire_block(cfg, program, stmt.body, visited)
        for head in b_heads:
            cfg.add_edge(pc, head)
        for tail in b_tails:
            cfg.add_edge(tail, pc)  # back edge
        if not stmt.body:
            cfg.add_edge(pc, pc)
        return [pc], [pc]  # loop exit happens at the header
    if isinstance(stmt, If):
        t_heads, t_tails = _wire_block(cfg, program, stmt.then, visited)
        e_heads, e_tails = _wire_block(cfg, program, stmt.els, visited)
        for head in t_heads + e_heads:
            cfg.add_edge(pc, head)
        exits = (t_tails or [pc]) + (e_tails or [pc])
        if not stmt.els:
            exits = (t_tails or []) + [pc]
        return [pc], exits
    if isinstance(stmt, CallStmt):
        if stmt.func in visited:  # recursion: approximate as opaque
            return [pc], [pc]
        callee = program.function(stmt.func)
        c_heads, c_tails = _wire_block(
            cfg, program, callee.body, visited + (stmt.func,)
        )
        for head in c_heads:
            cfg.add_edge(pc, head)
        return [pc], (c_tails or [pc])
    return [pc], [pc]
