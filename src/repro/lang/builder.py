"""Fluent construction of IR programs.

Workloads read naturally with this builder::

    b = ProgramBuilder("matmul")
    N, me = b.param("N"), b.param("me")
    A = b.shared("A", (8, 8))
    C = b.shared("C", (8, 8))
    with b.function("main"):
        with b.for_("i", 1, N) as i:
            with b.for_("k", b.param("Lkp"), b.param("Ukp")) as k:
                b.let("t", A[i, k])
                ...
    program = b.build()

Arithmetic on proxies produces IR expressions; ``A[i, j]`` produces an
element reference usable both as an expression and as a `b.set` target.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable

from repro.errors import LangError
from repro.lang.ast import (
    Annot,
    AnnotKind,
    AnnotTarget,
    ArrayDecl,
    Assign,
    Barrier,
    Bin,
    CallStmt,
    Comment,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Local,
    LockStmt,
    Param,
    Program,
    RangeSpec,
    Store,
    Un,
    UnlockStmt,
    While,
    number_program,
)


def as_expr(value) -> Expr:
    """Coerce builder-level values into IR expressions."""
    if isinstance(value, ExprProxy):
        return value.node
    if isinstance(value, ElemRef):
        return Load(value.array, value.indices)
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    raise LangError(f"cannot use {value!r} as an expression")


class ExprProxy:
    """Arithmetic-operator sugar around an IR expression."""

    __slots__ = ("node",)

    def __init__(self, node: Expr):
        self.node = node

    def _bin(self, op: str, other, swap: bool = False) -> "ExprProxy":
        left, right = as_expr(self), as_expr(other)
        if swap:
            left, right = right, left
        return ExprProxy(Bin(op, left, right))

    def __add__(self, o):
        return self._bin("+", o)

    def __radd__(self, o):
        return self._bin("+", o, swap=True)

    def __sub__(self, o):
        return self._bin("-", o)

    def __rsub__(self, o):
        return self._bin("-", o, swap=True)

    def __mul__(self, o):
        return self._bin("*", o)

    def __rmul__(self, o):
        return self._bin("*", o, swap=True)

    def __truediv__(self, o):
        return self._bin("/", o)

    def __rtruediv__(self, o):
        return self._bin("/", o, swap=True)

    def __floordiv__(self, o):
        return self._bin("//", o)

    def __rfloordiv__(self, o):
        return self._bin("//", o, swap=True)

    def __mod__(self, o):
        return self._bin("%", o)

    def __rmod__(self, o):
        return self._bin("%", o, swap=True)

    def __neg__(self):
        return ExprProxy(Un("neg", as_expr(self)))

    def __lt__(self, o):
        return self._bin("<", o)

    def __le__(self, o):
        return self._bin("<=", o)

    def __gt__(self, o):
        return self._bin(">", o)

    def __ge__(self, o):
        return self._bin(">=", o)

    def eq(self, o) -> "ExprProxy":
        return self._bin("==", o)

    def ne(self, o) -> "ExprProxy":
        return self._bin("!=", o)

    def logical_and(self, o) -> "ExprProxy":
        return self._bin("and", o)

    def logical_or(self, o) -> "ExprProxy":
        return self._bin("or", o)


# ``as_expr`` needs to accept ExprProxy instances created before class body
# finished; nothing further required.


class ElemRef:
    """``A[i, j]`` — usable as an expression (load) or a ``b.set`` target."""

    __slots__ = ("array", "indices")

    def __init__(self, array: str, indices: tuple[Expr, ...]):
        self.array = array
        self.indices = indices

    # Expression sugar: delegate arithmetic through a Load proxy.
    def _proxy(self) -> ExprProxy:
        return ExprProxy(Load(self.array, self.indices))

    def __add__(self, o):
        return self._proxy() + o

    def __radd__(self, o):
        return o + self._proxy()

    def __sub__(self, o):
        return self._proxy() - o

    def __rsub__(self, o):
        return o - self._proxy()

    def __mul__(self, o):
        return self._proxy() * o

    def __rmul__(self, o):
        return o * self._proxy()

    def __truediv__(self, o):
        return self._proxy() / o

    def __rtruediv__(self, o):
        return o / self._proxy()

    def __neg__(self):
        return -self._proxy()

    def __lt__(self, o):
        return self._proxy() < o

    def __le__(self, o):
        return self._proxy() <= o

    def __gt__(self, o):
        return self._proxy() > o

    def __ge__(self, o):
        return self._proxy() >= o


class ArrayHandle:
    """Builder-side handle for a declared array."""

    __slots__ = ("name", "decl")

    def __init__(self, name: str, decl: ArrayDecl):
        self.name = name
        self.decl = decl

    def __getitem__(self, idx) -> ElemRef:
        if not isinstance(idx, tuple):
            idx = (idx,)
        if len(idx) != len(self.decl.shape):
            raise LangError(
                f"{self.name}: expected {len(self.decl.shape)} indices, got {len(idx)}"
            )
        return ElemRef(self.name, tuple(as_expr(i) for i in idx))


class ProgramBuilder:
    def __init__(self, name: str):
        self.name = name
        self._arrays: dict[str, ArrayDecl] = {}
        self._functions: dict[str, Function] = {}
        self._stack: list[list] = []  # open statement blocks

    # ------------------------------------------------------------ declarations
    def shared(
        self,
        name: str,
        shape: tuple[int, ...],
        elem_size: int = 8,
        order: str = "C",
    ) -> ArrayHandle:
        return self._declare(ArrayDecl(name, tuple(shape), elem_size, order, False))

    def private(
        self,
        name: str,
        shape: tuple[int, ...],
        elem_size: int = 8,
        order: str = "C",
    ) -> ArrayHandle:
        return self._declare(ArrayDecl(name, tuple(shape), elem_size, order, True))

    def _declare(self, decl: ArrayDecl) -> ArrayHandle:
        if decl.name in self._arrays:
            raise LangError(f"array {decl.name!r} already declared")
        self._arrays[decl.name] = decl
        return ArrayHandle(decl.name, decl)

    def param(self, name: str) -> ExprProxy:
        return ExprProxy(Param(name))

    def var(self, name: str) -> ExprProxy:
        return ExprProxy(Local(name))

    # ------------------------------------------------------------- intrinsics
    def sqrt(self, e) -> ExprProxy:
        return ExprProxy(Un("sqrt", as_expr(e)))

    def abs(self, e) -> ExprProxy:
        return ExprProxy(Un("abs", as_expr(e)))

    def floor(self, e) -> ExprProxy:
        return ExprProxy(Un("floor", as_expr(e)))

    def min(self, a, b) -> ExprProxy:
        return ExprProxy(Bin("min", as_expr(a), as_expr(b)))

    def max(self, a, b) -> ExprProxy:
        return ExprProxy(Bin("max", as_expr(a), as_expr(b)))

    # ---------------------------------------------------------------- blocks
    def _emit(self, stmt) -> None:
        if not self._stack:
            raise LangError("statement emitted outside any function")
        self._stack[-1].append(stmt)

    @contextmanager
    def function(self, name: str, params: Iterable[str] = ()):
        if name in self._functions:
            raise LangError(f"function {name!r} already defined")
        body: list = []
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
        self._functions[name] = Function(name=name, params=tuple(params), body=body)

    @contextmanager
    def for_(self, var: str, lo, hi, step=1):
        body: list = []
        stmt = For(var=var, lo=as_expr(lo), hi=as_expr(hi), body=body, step=as_expr(step))
        self._emit(stmt)
        self._stack.append(body)
        try:
            yield ExprProxy(Local(var))
        finally:
            self._stack.pop()

    @contextmanager
    def while_(self, cond):
        body: list = []
        self._emit(While(cond=as_expr(cond), body=body))
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()

    @contextmanager
    def if_(self, cond):
        stmt = If(cond=as_expr(cond), then=[], els=[])
        self._emit(stmt)
        self._stack.append(stmt.then)
        try:
            yield
        finally:
            self._stack.pop()
        self._last_if = stmt

    @contextmanager
    def else_(self):
        stmt = getattr(self, "_last_if", None)
        if stmt is None or not isinstance(stmt, If):
            raise LangError("else_ without a preceding if_")
        self._stack.append(stmt.els)
        try:
            yield
        finally:
            self._stack.pop()
        self._last_if = None

    # ------------------------------------------------------------ statements
    def let(self, name: str, expr) -> None:
        """Assign a local scalar."""
        self._emit(Assign(name=name, expr=as_expr(expr)))

    def set(self, target: ElemRef, expr) -> None:
        """Store into an array element."""
        if not isinstance(target, ElemRef):
            raise LangError(f"set target must be an array element, got {target!r}")
        self._emit(Store(array=target.array, indices=target.indices, expr=as_expr(expr)))

    def barrier(self, label: str = "") -> None:
        self._emit(Barrier(label=label))

    def lock(self, target: ElemRef) -> None:
        self._emit(LockStmt(array=target.array, indices=target.indices))

    def unlock(self, target: ElemRef) -> None:
        self._emit(UnlockStmt(array=target.array, indices=target.indices))

    def call(self, func: str, *args) -> None:
        self._emit(CallStmt(func=func, args=tuple(as_expr(a) for a in args)))

    def comment(self, text: str) -> None:
        self._emit(Comment(text=text))

    # ------------------------------------------------------------ annotations
    def range(self, lo, hi, step=1) -> RangeSpec:
        """Inclusive index range for annotation targets."""
        return RangeSpec(lo=as_expr(lo), hi=as_expr(hi), step=as_expr(step))

    def target(self, array: ArrayHandle | str, *specs) -> AnnotTarget:
        name = array.name if isinstance(array, ArrayHandle) else str(array)
        if name not in self._arrays:
            raise LangError(f"annotation target on undeclared array {name!r}")
        out = tuple(
            spec if isinstance(spec, RangeSpec) else as_expr(spec) for spec in specs
        )
        if len(out) != len(self._arrays[name].shape):
            raise LangError(f"annotation target {name!r}: wrong index arity")
        return AnnotTarget(array=name, specs=out)

    def annot(self, kind: AnnotKind, *targets) -> None:
        resolved = tuple(
            t if isinstance(t, AnnotTarget) else self._elem_target(t) for t in targets
        )
        self._emit(Annot(kind=kind, targets=resolved))

    def _elem_target(self, ref: ElemRef) -> AnnotTarget:
        if not isinstance(ref, ElemRef):
            raise LangError(f"annotation target must be element or target, got {ref!r}")
        return AnnotTarget(array=ref.array, specs=tuple(ref.indices))

    def check_out_s(self, *targets) -> None:
        self.annot(AnnotKind.CHECK_OUT_S, *targets)

    def check_out_x(self, *targets) -> None:
        self.annot(AnnotKind.CHECK_OUT_X, *targets)

    def check_in(self, *targets) -> None:
        self.annot(AnnotKind.CHECK_IN, *targets)

    def prefetch_s(self, *targets) -> None:
        self.annot(AnnotKind.PREFETCH_S, *targets)

    def prefetch_x(self, *targets) -> None:
        self.annot(AnnotKind.PREFETCH_X, *targets)

    # ----------------------------------------------------------------- build
    def build(self, entry: str = "main") -> Program:
        if self._stack:
            raise LangError("build() inside an open block")
        if entry not in self._functions:
            raise LangError(f"program has no entry function {entry!r}")
        program = Program(
            name=self.name,
            arrays=dict(self._arrays),
            functions=dict(self._functions),
            entry=entry,
        )
        return number_program(program)
