"""A small structured SPMD program IR.

This is the "target program" substrate: Cachier needs an abstract syntax
tree, loop structure, and a control-flow graph of the program it annotates
(paper Sections 3.4 and 4.2-4.3).  Workloads are written in this IR via
:mod:`repro.lang.builder`; the interpreter executes them on the simulated
machine; the unparser prints them (annotated) in the paper's pseudocode
style.
"""

from repro.lang.ast import (
    AnnotKind,
    Annot,
    AnnotTarget,
    ArrayDecl,
    Assign,
    Barrier,
    Bin,
    CallStmt,
    Comment,
    Const,
    For,
    Function,
    If,
    Load,
    Local,
    LockStmt,
    Param,
    Program,
    RangeSpec,
    Store,
    Un,
    UnlockStmt,
    While,
    number_program,
)
from repro.lang.builder import ProgramBuilder
from repro.lang.interp import Interpreter, SharedStore
from repro.lang.parse import parse_program
from repro.lang.unparse import unparse_program

__all__ = [
    "AnnotKind",
    "Annot",
    "AnnotTarget",
    "ArrayDecl",
    "Assign",
    "Barrier",
    "Bin",
    "CallStmt",
    "Comment",
    "Const",
    "For",
    "Function",
    "If",
    "Load",
    "Local",
    "LockStmt",
    "Param",
    "Program",
    "RangeSpec",
    "Store",
    "Un",
    "UnlockStmt",
    "While",
    "number_program",
    "ProgramBuilder",
    "Interpreter",
    "SharedStore",
    "unparse_program",
    "parse_program",
]
