"""Parser for the paper-style pseudocode the unparser emits.

The real Cachier parsed C source into an AST; our IR's concrete syntax is
the paper's pseudocode, so this module completes the same loop:

    text -> parse_program() -> Program -> annotate -> unparse_program() -> text

Grammar (indentation-insensitive; block structure comes from keywords)::

    program   := { funcdef | stmt }            (bare stmts form main())
    funcdef   := "func" NAME "(" [params] ")" ":" { stmt }
    stmt      := "for" NAME "=" expr "to" expr ["step" expr] "do" {stmt} "od"
               | "while" expr "do" {stmt} "od"
               | "if" expr "then" {stmt} ["else" {stmt}] "fi"
               | "barrier" ["/*" label "*/"]
               | "lock" target | "unlock" target
               | "check_out_S" targets | "check_out_X" targets
               | "check_in" targets | "prefetch_S" targets | "prefetch_X" targets
               | "/***" text "***/"
               | "call" NAME "(" [args] ")"
               | NAME "[" indices "]" "=" expr      (array store)
               | NAME "=" expr                      (local assign)
    target    := NAME "[" spec {"," spec} "]"
    spec      := expr [":" expr [":" expr]]

Array declarations are not part of the pseudocode (the paper's listings
omit them), so ``parse_program`` takes the array declarations — or an
existing program to borrow them from.
"""

from __future__ import annotations

import re

from repro.errors import LangError
from repro.lang.ast import (
    Annot,
    AnnotKind,
    AnnotTarget,
    ArrayDecl,
    Assign,
    Barrier,
    Bin,
    CallStmt,
    Comment,
    Const,
    Expr,
    For,
    Function,
    If,
    Load,
    Local,
    LockStmt,
    Param,
    Program,
    RangeSpec,
    Store,
    Un,
    UnlockStmt,
    While,
    number_program,
)

_TOKEN = re.compile(
    r"""
    (?P<num>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|!=|//|[-+*/%<>=():\[\],])
  """,
    re.VERBOSE,
)

_ANNOT_KEYWORDS = {kind.value: kind for kind in AnnotKind}
_KEYWORDS = {
    "for", "to", "step", "do", "od", "while", "if", "then", "else", "fi",
    "barrier", "lock", "unlock", "call", "func", "and", "or", "not",
    "min", "max", "sqrt", "abs", "floor", "exp", "sin", "cos",
} | set(_ANNOT_KEYWORDS)

_INTRINSICS = {"sqrt", "abs", "floor", "exp", "sin", "cos"}


class _Lexer:
    def __init__(self, line: str, lineno: int):
        self.tokens: list[str] = []
        self.lineno = lineno
        pos = 0
        while pos < len(line):
            if line[pos].isspace():
                pos += 1
                continue
            match = _TOKEN.match(line, pos)
            if not match:
                raise LangError(f"line {lineno}: cannot tokenize {line[pos:]!r}")
            self.tokens.append(match.group())
            pos = match.end()
        self.at = 0

    def peek(self) -> str | None:
        return self.tokens[self.at] if self.at < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise LangError(f"line {self.lineno}: unexpected end of line")
        self.at += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise LangError(
                f"line {self.lineno}: expected {token!r}, got {got!r}"
            )

    def done(self) -> bool:
        return self.at >= len(self.tokens)


class _ExprParser:
    """Precedence-climbing expression parser over a lexer."""

    def __init__(self, lex: _Lexer, known_params: set[str]):
        self.lex = lex
        self.params = known_params

    def parse(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self.lex.peek() == "or":
            self.lex.next()
            left = Bin("or", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._cmp()
        while self.lex.peek() == "and":
            self.lex.next()
            left = Bin("and", left, self._cmp())
        return left

    def _cmp(self) -> Expr:
        left = self._add()
        if self.lex.peek() in ("<", "<=", ">", ">=", "==", "!="):
            op = self.lex.next()
            return Bin(op, left, self._add())
        return left

    def _add(self) -> Expr:
        left = self._mul()
        while self.lex.peek() in ("+", "-"):
            op = self.lex.next()
            left = Bin(op, left, self._mul())
        return left

    def _mul(self) -> Expr:
        left = self._unary()
        while self.lex.peek() in ("*", "/", "//", "%"):
            op = self.lex.next()
            left = Bin(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self.lex.peek() == "-":
            self.lex.next()
            return Un("neg", self._unary())
        if self.lex.peek() == "not":
            self.lex.next()
            return Un("not", self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self.lex.next()
        if re.fullmatch(r"\d+\.\d+", token):
            return Const(float(token))
        if token.isdigit():
            return Const(int(token))
        if token == "(":
            inner = self.parse()
            self.lex.expect(")")
            return inner
        if token in _INTRINSICS:
            self.lex.expect("(")
            inner = self.parse()
            self.lex.expect(")")
            return Un(token, inner)
        if token in ("min", "max"):
            self.lex.expect("(")
            left = self.parse()
            self.lex.expect(",")
            right = self.parse()
            self.lex.expect(")")
            return Bin(token, left, right)
        if not re.fullmatch(r"[A-Za-z_]\w*", token):
            raise LangError(
                f"line {self.lex.lineno}: unexpected token {token!r}"
            )
        if self.lex.peek() == "[":
            self.lex.next()
            indices = [self.parse()]
            while self.lex.peek() == ",":
                self.lex.next()
                indices.append(self.parse())
            self.lex.expect("]")
            return Load(token, tuple(indices))
        if token in self.params:
            return Param(token)
        return Local(token)


class _Parser:
    def __init__(self, text: str, params: set[str]):
        self.lines = [
            (lineno, stripped)
            for lineno, raw in enumerate(text.splitlines(), start=1)
            if (stripped := raw.strip())
        ]
        self.at = 0
        self.params = params | {"me"}

    def peek_line(self) -> str | None:
        return self.lines[self.at][1] if self.at < len(self.lines) else None

    def next_line(self) -> tuple[int, str]:
        if self.at >= len(self.lines):
            raise LangError("unexpected end of program")
        line = self.lines[self.at]
        self.at += 1
        return line

    # ----------------------------------------------------------------- blocks
    def parse_block(self, terminators: tuple[str, ...]) -> list:
        stmts: list = []
        while True:
            line = self.peek_line()
            if line is None:
                # A function body may simply run to the end of the text;
                # structured blocks must close explicitly.
                if terminators and terminators != ("func",):
                    raise LangError(
                        f"missing {' / '.join(terminators)} before end of text"
                    )
                return stmts
            first = line.split(None, 1)[0] if line else ""
            if first in terminators or line in terminators:
                return stmts
            stmts.append(self.parse_stmt())

    def parse_stmt(self):
        lineno, line = self.next_line()
        # Comments: /*** text ***/
        if line.startswith("/***") and line.endswith("***/"):
            return Comment(text=line[4:-4].strip())
        lex = _Lexer(line, lineno)
        head = lex.next()
        if head == "for":
            var = lex.next()
            lex.expect("=")
            expr = _ExprParser(lex, self.params)
            lo = expr.parse()
            lex.expect("to")
            hi = expr.parse()
            step: Expr = Const(1)
            if lex.peek() == "step":
                lex.next()
                step = expr.parse()
            lex.expect("do")
            body = self.parse_block(("od",))
            self.next_line()  # od
            return For(var=var, lo=lo, hi=hi, body=body, step=step)
        if head == "while":
            expr = _ExprParser(lex, self.params)
            cond = expr.parse()
            lex.expect("do")
            body = self.parse_block(("od",))
            self.next_line()
            return While(cond=cond, body=body)
        if head == "if":
            expr = _ExprParser(lex, self.params)
            cond = expr.parse()
            lex.expect("then")
            then = self.parse_block(("else", "fi"))
            els: list = []
            marker, marker_line = self.lines[self.at][1], self.next_line()
            if marker.startswith("else"):
                els = self.parse_block(("fi",))
                self.next_line()
            return If(cond=cond, then=then, els=els)
        if head == "barrier":
            label = ""
            rest = line[len("barrier"):].strip()
            match = re.match(r"/\*\s*(.*?)\s*\*/", rest)
            if match:
                label = match.group(1)
            return Barrier(label=label)
        if head in ("lock", "unlock"):
            expr = _ExprParser(lex, self.params)
            ref = expr._atom()
            if not isinstance(ref, Load):
                raise LangError(f"line {lineno}: {head} needs an array element")
            cls = LockStmt if head == "lock" else UnlockStmt
            return cls(array=ref.array, indices=ref.indices)
        if head in _ANNOT_KEYWORDS:
            targets = [self._parse_target(lex, lineno)]
            while lex.peek() == ",":
                lex.next()
                targets.append(self._parse_target(lex, lineno))
            return Annot(kind=_ANNOT_KEYWORDS[head], targets=tuple(targets))
        if head == "call":
            func = lex.next()
            lex.expect("(")
            args: list[Expr] = []
            if lex.peek() != ")":
                expr = _ExprParser(lex, self.params)
                args.append(expr.parse())
                while lex.peek() == ",":
                    lex.next()
                    args.append(expr.parse())
            lex.expect(")")
            return CallStmt(func=func, args=tuple(args))
        # Assignment: NAME [indices] = expr   or   NAME = expr
        name = head
        if lex.peek() == "[":
            lex.next()
            expr = _ExprParser(lex, self.params)
            indices = [expr.parse()]
            while lex.peek() == ",":
                lex.next()
                indices.append(expr.parse())
            lex.expect("]")
            lex.expect("=")
            value = _ExprParser(lex, self.params).parse()
            return Store(array=name, indices=tuple(indices), expr=value)
        lex.expect("=")
        value = _ExprParser(lex, self.params).parse()
        return Assign(name=name, expr=value)

    def _parse_target(self, lex: _Lexer, lineno: int) -> AnnotTarget:
        array = lex.next()
        lex.expect("[")
        specs: list = []
        expr = _ExprParser(lex, self.params)
        while True:
            first = expr.parse()
            if lex.peek() == ":":
                lex.next()
                hi = expr.parse()
                step: Expr = Const(1)
                if lex.peek() == ":":
                    lex.next()
                    step = expr.parse()
                specs.append(RangeSpec(lo=first, hi=hi, step=step))
            else:
                specs.append(first)
            if lex.peek() == ",":
                lex.next()
                continue
            lex.expect("]")
            return AnnotTarget(array=array, specs=tuple(specs))


_ARRAY_DECL = re.compile(
    r"array\s+(\w+)\[([\d,\s]+)\]\s+elem=(\d+)\s+order=([CF])(\s+private)?"
)


def _extract_inline_decls(text: str) -> tuple[str, dict[str, ArrayDecl]]:
    """Split leading ``array NAME[shape] elem=N order=C [private]`` headers
    (the self-describing form ``unparse_program(declarations=True)`` emits)
    from the program body."""
    decls: dict[str, ArrayDecl] = {}
    body_lines: list[str] = []
    in_header = True
    for line in text.splitlines():
        stripped = line.strip()
        if in_header and stripped.startswith("array "):
            match = _ARRAY_DECL.fullmatch(stripped)
            if not match:
                raise LangError(f"bad array declaration: {stripped!r}")
            name, shape_s, elem, order, private = match.groups()
            shape = tuple(int(x) for x in shape_s.split(","))
            decls[name] = ArrayDecl(
                name, shape, int(elem), order, bool(private)
            )
            continue
        if in_header and not stripped:
            continue
        in_header = False
        body_lines.append(line)
    return "\n".join(body_lines) + "\n", decls


def parse_program(
    text: str,
    arrays: dict[str, ArrayDecl] | Program | None = None,
    name: str = "parsed",
    params: set[str] | None = None,
) -> Program:
    """Parse pseudocode into a numbered :class:`Program`.

    ``arrays`` supplies the array declarations; pass an existing Program to
    borrow its declarations, or ``None`` when the text carries inline
    ``array`` header lines (``unparse_program(declarations=True)``).
    ``params`` names the identifiers to treat as runtime parameters; when
    borrowing from a Program they default to every Param the program uses,
    and with inline declarations every unknown bare identifier that is never
    assigned would be a Local — so pass ``params`` explicitly in that mode
    if the program uses any besides ``me``.
    """
    inline_body, inline_decls = _extract_inline_decls(text)
    if isinstance(arrays, Program):
        if params is None:
            params = _collect_params(arrays)
        decls = dict(arrays.arrays)
    elif arrays is None:
        if not inline_decls:
            raise LangError(
                "no array declarations: pass `arrays` or use inline "
                "`array` header lines"
            )
        decls = inline_decls
    else:
        decls = dict(arrays)
    if inline_decls:
        text = inline_body
        decls = {**inline_decls, **{k: v for k, v in decls.items()
                                    if k not in inline_decls}}
    parser = _Parser(text, params or set())

    functions: dict[str, Function] = {}
    main_body: list = []
    while parser.peek_line() is not None:
        line = parser.peek_line()
        if line.startswith("func "):
            lineno, header = parser.next_line()
            match = re.match(r"func\s+(\w+)\((.*?)\):", header)
            if not match:
                raise LangError(f"line {lineno}: bad function header {header!r}")
            fname = match.group(1)
            fparams = tuple(
                p.strip() for p in match.group(2).split(",") if p.strip()
            )
            body = parser.parse_block(("func",))
            functions[fname] = Function(name=fname, params=fparams, body=body)
        else:
            main_body.append(parser.parse_stmt())
    if main_body:
        if "main" in functions:
            raise LangError("both bare statements and a main() function given")
        functions["main"] = Function(name="main", params=(), body=main_body)
    if "main" not in functions:
        raise LangError("no main() function and no bare statements")
    program = Program(name=name, arrays=decls, functions=functions)
    return number_program(program)


def _collect_params(program: Program) -> set[str]:
    from repro.lang.ast import walk_stmts
    from repro.lang.loops import expr_params

    out: set[str] = set()

    def scan_expr(expr):
        out.update(expr_params(expr))

    for func in program.functions.values():
        for stmt in walk_stmts(func.body):
            for attr in ("expr", "cond", "lo", "hi", "step"):
                value = getattr(stmt, attr, None)
                if value is not None and isinstance(value, Expr):
                    scan_expr(value)
            for attr in ("indices", "args"):
                for value in getattr(stmt, attr, ()) or ():
                    scan_expr(value)
            for target in getattr(stmt, "targets", ()) or ():
                for spec in target.specs:
                    if isinstance(spec, RangeSpec):
                        scan_expr(spec.lo)
                        scan_expr(spec.hi)
                        scan_expr(spec.step)
                    else:
                        scan_expr(spec)
    return out
