"""IR node definitions.

Programs are SPMD: every node runs the same ``main`` function with its own
parameter environment (``me``, per-node block bounds like ``Ljp``/``Ujp``,
problem sizes).  Loop bounds written as :class:`Param` expressions are what
lets one program text describe all nodes — and what lets the annotator print
symbolic annotation targets like ``B[k, Ljp:Ujp]`` (Section 4.4).

Statement PCs
-------------
Every *statement* carries a ``pc``, assigned by :func:`number_program` in a
deterministic pre-order walk.  A memory reference in the trace records the pc
of its enclosing statement — line granularity, like the paper's tracer, which
is exactly why address-to-variable mapping needs the labelled regions rather
than the pc alone (their ``C[i,j] = C[i,j] + A[i,k]*B[k,j]`` example).
Expressions carry no pc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LangError

# =========================================================================
# Expressions
# =========================================================================


class Expr:
    """Base class for expressions (numeric values)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: float | int


@dataclass(frozen=True, slots=True)
class Param(Expr):
    """A runtime parameter from the node's environment (me, N, Lip, ...)."""

    name: str


@dataclass(frozen=True, slots=True)
class Local(Expr):
    """A local scalar variable of the current function frame."""

    name: str


#: Binary operators the interpreter understands.
BIN_OPS = {
    "+", "-", "*", "/", "//", "%",
    "<", "<=", ">", ">=", "==", "!=",
    "and", "or", "min", "max",
}

#: Unary operators / intrinsics.
UN_OPS = {"neg", "not", "abs", "sqrt", "floor", "exp", "sin", "cos"}


@dataclass(frozen=True, slots=True)
class Bin(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise LangError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class Un(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UN_OPS:
            raise LangError(f"unknown unary operator {self.op!r}")


@dataclass(frozen=True, slots=True)
class Load(Expr):
    """Load one element of an array (shared or private, per its decl)."""

    array: str
    indices: tuple[Expr, ...]


# =========================================================================
# Annotation targets
# =========================================================================


@dataclass(frozen=True, slots=True)
class RangeSpec:
    """An *inclusive* index range ``lo:hi`` (with optional step) inside an
    annotation target — the paper writes ``B[k, Ljp:Ujp]``."""

    lo: Expr
    hi: Expr
    step: Expr = Const(1)


IndexSpec = "Expr | RangeSpec"


@dataclass(frozen=True, slots=True)
class AnnotTarget:
    """What an annotation covers: an array and per-dimension index specs."""

    array: str
    specs: tuple[object, ...]  # each is Expr or RangeSpec


import enum


class AnnotKind(enum.Enum):
    CHECK_OUT_S = "check_out_S"
    CHECK_OUT_X = "check_out_X"
    CHECK_IN = "check_in"
    PREFETCH_S = "prefetch_S"
    PREFETCH_X = "prefetch_X"


# =========================================================================
# Statements
# =========================================================================


class Stmt:
    __slots__ = ()


@dataclass(slots=True)
class Assign(Stmt):
    """``name = expr`` (local scalar)."""

    name: str
    expr: Expr
    pc: int = -1


@dataclass(slots=True)
class Store(Stmt):
    """``array[indices] = expr`` (shared or private array)."""

    array: str
    indices: tuple[Expr, ...]
    expr: Expr
    pc: int = -1


@dataclass(slots=True)
class For(Stmt):
    """``for var = lo to hi step s do body od`` — *inclusive* bounds,
    matching the paper's pseudocode."""

    var: str
    lo: Expr
    hi: Expr
    body: list[Stmt]
    step: Expr = Const(1)
    pc: int = -1


@dataclass(slots=True)
class While(Stmt):
    cond: Expr
    body: list[Stmt]
    pc: int = -1


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then: list[Stmt]
    els: list[Stmt] = field(default_factory=list)
    pc: int = -1


@dataclass(slots=True)
class Barrier(Stmt):
    label: str = ""
    pc: int = -1


@dataclass(slots=True)
class LockStmt(Stmt):
    """Acquire the lock guarding ``array[indices]``."""

    array: str
    indices: tuple[Expr, ...]
    pc: int = -1


@dataclass(slots=True)
class UnlockStmt(Stmt):
    array: str
    indices: tuple[Expr, ...]
    pc: int = -1


@dataclass(slots=True)
class Annot(Stmt):
    """A CICO annotation statement."""

    kind: AnnotKind
    targets: tuple[AnnotTarget, ...]
    pc: int = -1


@dataclass(slots=True)
class Comment(Stmt):
    """A comment attached to the source (data-race / false-sharing flags)."""

    text: str
    pc: int = -1


@dataclass(slots=True)
class CallStmt(Stmt):
    """Call a program function; arguments bind to its parameter names."""

    func: str
    args: tuple[Expr, ...] = ()
    pc: int = -1


# =========================================================================
# Declarations / program
# =========================================================================


@dataclass(frozen=True, slots=True)
class ArrayDecl:
    """A labelled array.  ``private`` arrays are per-node scratch (no
    coherence traffic); shared arrays live in the labelled shared segment."""

    name: str
    shape: tuple[int, ...]
    elem_size: int = 8
    order: str = "C"
    private: bool = False

    def __post_init__(self) -> None:
        if not self.shape or any(n <= 0 for n in self.shape):
            raise LangError(f"array {self.name!r}: bad shape {self.shape!r}")
        if self.order not in ("C", "F"):
            raise LangError(f"array {self.name!r}: bad order {self.order!r}")


@dataclass(slots=True)
class Function:
    name: str
    params: tuple[str, ...]
    body: list[Stmt]


@dataclass(slots=True)
class Program:
    name: str
    arrays: dict[str, ArrayDecl]
    functions: dict[str, Function]
    entry: str = "main"
    max_pc: int = -1

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise LangError(f"program {self.name!r} has no function {name!r}") from None

    def array(self, name: str) -> ArrayDecl:
        try:
            return self.arrays[name]
        except KeyError:
            raise LangError(f"program {self.name!r} has no array {name!r}") from None

    def shared_arrays(self) -> list[ArrayDecl]:
        return [decl for decl in self.arrays.values() if not decl.private]


# =========================================================================
# Walking / numbering
# =========================================================================


def child_blocks(stmt: Stmt) -> list[list[Stmt]]:
    """Statement lists nested directly inside ``stmt``."""
    if isinstance(stmt, (For, While)):
        return [stmt.body]
    if isinstance(stmt, If):
        return [stmt.then, stmt.els]
    return []


def walk_stmts(body: list[Stmt]):
    """Pre-order walk yielding every statement in ``body`` recursively."""
    for stmt in body:
        yield stmt
        for block in child_blocks(stmt):
            yield from walk_stmts(block)


def number_program(program: Program, start: int = 1) -> Program:
    """Assign deterministic pcs to every statement (pre-order, functions in
    insertion order).  Returns the same program, mutated."""
    pc = start
    for func in program.functions.values():
        for stmt in walk_stmts(func.body):
            stmt.pc = pc
            pc += 1
    program.max_pc = pc - 1
    return program


def fresh_pcs(program: Program, body: list[Stmt]) -> None:
    """Assign pcs beyond ``program.max_pc`` to any unnumbered statements in
    ``body`` (used when the annotator inserts new statements)."""
    pc = program.max_pc
    for stmt in walk_stmts(body):
        if stmt.pc < 0:
            pc += 1
            stmt.pc = pc
    program.max_pc = pc
