"""Secondary experiments: the paper's non-Figure-6 quantitative claims.

* :func:`jacobi_cost_table` — E2, Section 2.1: simulated check-out counts
  equal the closed-form CICO cost-model block counts, in both cache regimes.
* :func:`restructuring_table` — E6, Section 5: the racing multiply's N^3
  check-outs vs the restructured version's N^2 P/2 (N^2 P/4 raced), plus
  cycles and functional correctness.
* :func:`input_sensitivity` — E7, Section 4.5: annotations derived from one
  input data set, applied to a run on a different data set, land within a
  couple of percent of same-input annotations.
* :func:`mechanisms_table` — E8, Section 6's mechanism discussion: the
  Cachier version's reductions in write faults, software traps, recalls and
  message counts per benchmark.
* :func:`ablation_history` / :func:`ablation_policy` — the DESIGN.md
  ablations: equation history depth and Programmer-vs-Performance CICO used
  as memory-system directives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cachier.annotator import Cachier, Policy
from repro.harness.reporting import render_table
from repro.harness.runner import run_program, trace_program
from repro.workloads.base import get_workload


# ----------------------------------------------------------------- E2: Jacobi
def jacobi_cost_table(n: int = 16, steps: int = 4, num_nodes: int = 16) -> str:
    from repro.workloads.jacobi import expected_checkouts, make

    rows = []
    for variant in ("cico_fits", "cico_column"):
        spec = make(n=n, steps=steps, num_nodes=num_nodes, variant=variant)
        result, _ = run_program(spec.program, spec.config, spec.params_fn)
        formula = expected_checkouts(variant, n, steps, num_nodes)
        rows.append(
            [variant, result.stats.checkouts, formula,
             "OK" if result.stats.checkouts == formula else "MISMATCH"]
        )
    return render_table(
        ["regime", "simulated check-outs", "Sec. 2.1 formula", "match"],
        rows,
        title=f"E2: Jacobi CICO cost model (N={n}, T={steps}, P^2={num_nodes})",
    )


# ---------------------------------------------------------- E6: restructuring
@dataclass
class RestructureOutcome:
    racing_checkouts: int
    racing_expected: float
    restructured_checkouts: int
    restructured_expected: float
    raced_expected: float
    racing_cycles: int
    restructured_cycles: int
    racing_correct: bool
    restructured_correct: bool


def restructuring_outcome(n: int = 8, num_nodes: int = 4) -> RestructureOutcome:
    from repro.cico.cost_model import (
        matmul_original_c_checkouts,
        matmul_restructured_c_checkouts,
        matmul_restructured_raced_checkouts,
    )
    from repro.workloads import matmul_racing, matmul_restructured

    side = int(num_nodes ** 0.5)
    racing = matmul_racing.make(n=n, num_nodes=num_nodes)
    trace = trace_program(racing.program, racing.config, racing.params_fn)
    cachier = Cachier(
        racing.program, trace, params_fn=racing.params_fn,
        cache_size=racing.cachier_cache_size,
    )
    annotated = cachier.annotate(Policy.PERFORMANCE)
    r_rac, store_rac = run_program(
        annotated.program, racing.config, racing.params_fn
    )
    restructured = matmul_restructured.make(n=n, num_nodes=num_nodes)
    r_res, store_res = run_program(
        restructured.program, restructured.config, restructured.params_fn
    )

    def correct(store) -> bool:
        return bool(
            np.allclose(
                store.as_ndarray("C"),
                store.as_ndarray("A") @ store.as_ndarray("B"),
            )
        )

    return RestructureOutcome(
        racing_checkouts=r_rac.stats.checkouts,
        racing_expected=matmul_original_c_checkouts(n),
        restructured_checkouts=r_res.stats.checkouts,
        restructured_expected=matmul_restructured_c_checkouts(n, side),
        raced_expected=matmul_restructured_raced_checkouts(n, side),
        racing_cycles=r_rac.cycles,
        restructured_cycles=r_res.cycles,
        racing_correct=correct(store_rac),
        restructured_correct=correct(store_res),
    )


def restructuring_table(n: int = 8, num_nodes: int = 4) -> str:
    out = restructuring_outcome(n, num_nodes)
    rows = [
        ["racing (Sec. 4.4, Cachier CICO)", out.racing_checkouts,
         out.racing_expected, out.racing_cycles, out.racing_correct],
        ["restructured (Sec. 5)", out.restructured_checkouts,
         out.restructured_expected, out.restructured_cycles,
         out.restructured_correct],
    ]
    return render_table(
        ["program", "check-outs", "Sec. 5 count", "cycles", "correct"],
        rows,
        title=f"E6: restructuring with CICO (N={n}, {num_nodes} processors)",
    )


# --------------------------------------------------- E7: input sensitivity
def input_sensitivity(
    workload: str = "mp3d", seed_a: int = 1, seed_b: int = 2, **kwargs
) -> dict:
    """Annotate with input A; evaluate on input B (Section 4.5: < 2%)."""
    spec_a = get_workload(workload, seed=seed_a, **kwargs)
    spec_b = get_workload(workload, seed=seed_b, **kwargs)

    def annotate_with(spec):
        trace = trace_program(spec.program, spec.config, spec.params_fn)
        return Cachier(
            spec.program, trace, params_fn=spec.params_fn,
            cache_size=spec.cachier_cache_size,
        )

    cachier_a = annotate_with(spec_a)
    cachier_b = annotate_with(spec_b)
    plan_a = cachier_a.annotate(Policy.PERFORMANCE).plan
    same_input = cachier_b.annotate(Policy.PERFORMANCE).program
    cross_input = cachier_b.apply_plan(spec_b.program, plan_a)

    same, _ = run_program(same_input, spec_b.config, spec_b.params_fn)
    cross, _ = run_program(cross_input, spec_b.config, spec_b.params_fn)
    plain, _ = run_program(spec_b.program, spec_b.config, spec_b.params_fn)
    return {
        "workload": workload,
        "plain_cycles": plain.cycles,
        "same_input_cycles": same.cycles,
        "cross_input_cycles": cross.cycles,
        "relative_difference": abs(cross.cycles - same.cycles) / same.cycles,
    }


# -------------------------------------------------------- E8: mechanisms
def mechanisms_rows(benchmarks=("matmul", "ocean", "mp3d", "barnes")) -> list:
    from repro.harness.variants import CACHIER, PLAIN, build_variants

    rows = []
    for name in benchmarks:
        spec = get_workload(name)
        vs = build_variants(spec, include_prefetch=False)
        plain = vs.run(PLAIN)
        auto = vs.run(CACHIER)
        rows.append(
            [
                name,
                plain.stats.write_faults,
                auto.stats.write_faults,
                plain.sw_traps,
                auto.sw_traps,
                plain.recalls,
                auto.recalls,
                plain.total_messages,
                auto.total_messages,
            ]
        )
    return rows


def mechanisms_table(benchmarks=("matmul", "ocean", "mp3d", "barnes")) -> str:
    return render_table(
        ["benchmark", "wf", "wf'", "traps", "traps'", "recalls", "recalls'",
         "msgs", "msgs'"],
        mechanisms_rows(benchmarks),
        title="E8: protocol-event reductions (plain vs Cachier-annotated ')",
    )


# ------------------------------------------------------- epoch breakdown
def epoch_breakdown(workload: str = "matmul", **kwargs) -> list:
    """Per-epoch cycle comparison, plain vs Cachier-annotated.

    Localizes *where* the gains land: e.g. for the blocked matmul the big
    delta is the fold epoch (consumers stop paying recalls for the
    producers' C blocks) and the compute epoch (upgrades gone)."""
    from repro.harness.variants import CACHIER, PLAIN, build_variants

    spec = get_workload(workload, **kwargs)
    vs = build_variants(spec, include_prefetch=False)
    plain = vs.run(PLAIN)
    auto = vs.run(CACHIER)
    rows = []
    plain_epochs = plain.epoch_times()
    auto_epochs = auto.epoch_times()
    for index in range(max(len(plain_epochs), len(auto_epochs))):
        p = plain_epochs[index] if index < len(plain_epochs) else 0
        a = auto_epochs[index] if index < len(auto_epochs) else 0
        rows.append([index, p, a, (a / p) if p else float("nan")])
    return rows


# ------------------------------------------------------------- ablations
def ablation_history(workload: str = "ocean", depths=(1, 2, 3)) -> list:
    spec = get_workload(workload)
    trace = trace_program(spec.program, spec.config, spec.params_fn)
    cachier = Cachier(
        spec.program, trace, params_fn=spec.params_fn,
        cache_size=spec.cachier_cache_size,
    )
    plain, _ = run_program(spec.program, spec.config, spec.params_fn)
    rows = []
    for depth in depths:
        annotated = cachier.annotate(Policy.PERFORMANCE, history=depth)
        result, _ = run_program(annotated.program, spec.config, spec.params_fn)
        rows.append([depth, result.cycles, result.cycles / plain.cycles])
    return rows


def ablation_policy(workload: str = "matmul") -> list:
    """Programmer vs Performance CICO used as memory-system directives."""
    spec = get_workload(workload)
    trace = trace_program(spec.program, spec.config, spec.params_fn)
    cachier = Cachier(
        spec.program, trace, params_fn=spec.params_fn,
        cache_size=spec.cachier_cache_size,
    )
    plain, _ = run_program(spec.program, spec.config, spec.params_fn)
    rows = [["plain", plain.cycles, 1.0, 0]]
    for policy in (Policy.PROGRAMMER, Policy.PERFORMANCE):
        annotated = cachier.annotate(policy)
        result, _ = run_program(annotated.program, spec.config, spec.params_fn)
        rows.append(
            [policy.value, result.cycles, result.cycles / plain.cycles,
             result.stats.checkouts + result.stats.checkins]
        )
    return rows
