"""Run programs on the simulated machine: trace mode and timing mode.

This reproduces the paper's experimental flow (Figure 1):

1. ``trace_program`` — execute the *unannotated* program with per-barrier
   cache flushing and a :class:`TraceCollector` attached (what WWT did), and
   return the trace.
2. ``Cachier(...).annotate(...)`` — produce the annotated program.
3. ``run_program`` — execute any program variant in timing mode (no
   flushing) and report cycles, miss counts and traffic.

Both entry points take an optional :class:`~repro.obs.session.Observer`;
when given, the machine publishes onto the observer's bus and the run's
metrics / epoch timeline / Chrome trace events are attached to the
:class:`RunResult` (``result.obs``).  Observation never changes the
simulated cycles or statistics.

Robustness hooks (all optional, all off by default):

* ``faults_seed`` — attach a seeded :class:`~repro.faults.FaultInjector`;
  timing changes, architectural results do not (barrier-deferred stall).
* ``verify`` — attach a :class:`~repro.verify.InvariantChecker` to the
  run's bus; the resulting :class:`~repro.verify.VerifyReport` lands in
  ``result.extra["verify_report"]`` and violations raise
  :class:`~repro.errors.VerifyError`.
* ``checkpoint_dir`` / ``resume`` — persist a barrier-aligned snapshot
  (machine state + shared-store values) after every barrier and, on
  ``resume=True``, fast-forward a fresh run from the last complete one.

Sweeps (figure6, bench, verify) do not call :func:`run_program` in a loop
any more: they submit :func:`run_workload_variant` units through the
process pool (:mod:`repro.harness.pool`), which executes them across
workers — or inline at ``--jobs 1`` — with byte-identical results.
"""

from __future__ import annotations

from typing import Callable

from repro.cachier.annotator import Cachier, CachierResult, Policy
from repro.errors import VerifyError
from repro.faults import make_injector
from repro.lang.ast import Program
from repro.lang.interp import Interpreter, SharedStore
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine, RunResult
from repro.obs.events import EventBus
from repro.obs.session import Observer
from repro.trace.collector import TraceCollector
from repro.trace.records import Trace

ParamsFn = Callable[[int], dict]


def _checkpointer(checkpoint_dir, name, flavor):
    from repro.harness.checkpoint import Checkpointer

    return Checkpointer(checkpoint_dir, f"{name}.{flavor}")


def _run_machine(
    machine: Machine,
    store: SharedStore,
    kernel_factory,
    *,
    verify: bool,
    strict_verify: bool,
    verify_label: str,
    checkpoint_dir,
    checkpoint_name: str,
    flavor: str,
    resume: bool,
    host_profiler=None,
    verify_metrics=None,
) -> RunResult:
    """Shared tail of trace/timing runs: wire checker + checkpointing,
    execute, finalize the checker, attach reports."""
    checker = None
    if verify:
        from repro.verify import InvariantChecker

        checker = InvariantChecker(
            machine.protocol, strict_cico=strict_verify, label=verify_label,
            metrics=verify_metrics,
        )
        checker.subscribe(machine.bus)

    checkpoint_cb = None
    resume_snap = None
    on_resume = None
    if checkpoint_dir is not None:
        ckpt = _checkpointer(checkpoint_dir, checkpoint_name, flavor)
        if resume:
            resume_snap = ckpt.load()
            if resume_snap is not None:
                values = resume_snap.get("store") or {}

                def on_resume(values=values):
                    store.restore_values(values)

        def checkpoint_cb(snap, ckpt=ckpt, store=store):
            snap["store"] = store.snapshot_values()
            ckpt.save(snap)

    try:
        if host_profiler is not None:
            # The profiler activates for exactly the machine's execution:
            # everything the instrumented subsystems don't claim is credited
            # to the "machine" phase (the step loop itself).
            from repro.obs import hostprof

            with host_profiler.running(), hostprof.perf_region("machine"):
                result = machine.run(
                    kernel_factory,
                    checkpoint=checkpoint_cb,
                    resume_from=resume_snap,
                    on_resume=on_resume,
                )
        else:
            result = machine.run(
                kernel_factory,
                checkpoint=checkpoint_cb,
                resume_from=resume_snap,
                on_resume=on_resume,
            )
    except VerifyError as exc:
        if checker is not None:
            exc.report = checker.failure_report(exc)
        raise
    if checker is not None:
        result.extra["verify_report"] = checker.finalize(result)
    if machine.faults is not None:
        result.extra["fault_stats"] = machine.faults.stats.as_dict()
    return result


def trace_program(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    observer: Observer | None = None,
    *,
    faults_seed: int | None = None,
    verify: bool = False,
    strict_verify: bool = False,
) -> Trace:
    """Collect the per-epoch miss trace of an unannotated program.

    Per-epoch miss sets are invariant under fault injection (the stall is
    barrier-deferred), so a fault-injected trace equals the fault-free one
    — a property the determinism tests pin down.
    """
    store = SharedStore(program, block_size=config.block_size)
    collector = TraceCollector(
        labels=store.labels,
        block_size=config.block_size,
        num_nodes=config.num_nodes,
    )
    bus = observer.bus if observer is not None else EventBus()
    collector.subscribe(bus)
    if observer is not None:
        observer.bind_run(
            program, store.labels, block_size=config.block_size,
            params_fn=params_fn, num_nodes=config.num_nodes,
        )
    interp = Interpreter(program, store, params_fn=params_fn)
    machine = Machine(
        config, bus=bus, flush_at_barrier=True,
        faults=make_injector(faults_seed),
    )
    result = _run_machine(
        machine, store, interp.kernel,
        verify=verify, strict_verify=strict_verify,
        verify_label=f"{program.name}/trace",
        checkpoint_dir=None, checkpoint_name=program.name, flavor="trace",
        resume=False,
        host_profiler=observer.host_profiler if observer is not None else None,
        verify_metrics=observer.registry if observer is not None else None,
    )
    if observer is not None:
        observer.finalize(result)
    return collector.finish()


def run_program(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    observer: Observer | None = None,
    *,
    faults_seed: int | None = None,
    verify: bool = False,
    strict_verify: bool = False,
    verify_label: str = "",
    checkpoint_dir: str | None = None,
    checkpoint_name: str | None = None,
    resume: bool = False,
) -> tuple[RunResult, SharedStore]:
    """Timing run (no trace-mode flushing)."""
    store = SharedStore(program, block_size=config.block_size)
    if observer is not None:
        observer.bind_run(
            program, store.labels, block_size=config.block_size,
            params_fn=params_fn, num_nodes=config.num_nodes,
        )
    interp = Interpreter(program, store, params_fn=params_fn)
    bus = observer.bus if observer is not None else None
    if bus is None and verify:
        bus = EventBus()
    machine = Machine(
        config, flush_at_barrier=False, bus=bus,
        faults=make_injector(faults_seed),
    )
    result = _run_machine(
        machine, store, interp.kernel,
        verify=verify, strict_verify=strict_verify,
        verify_label=verify_label or program.name,
        checkpoint_dir=checkpoint_dir,
        checkpoint_name=checkpoint_name or program.name, flavor="run",
        resume=resume,
        host_profiler=observer.host_profiler if observer is not None else None,
        verify_metrics=observer.registry if observer is not None else None,
    )
    if observer is not None:
        observer.finalize(result)
    return result, store


def run_workload_variant(
    workload: str,
    variant: str,
    policy: str = "performance",
    include_prefetch: bool = True,
    obs_dir: str | None = None,
    faults_seed: int | None = None,
    verify: bool = False,
) -> RunResult:
    """Build (memoised per process) and execute one named workload variant.

    This is the unit of work the sweep pool fans out: everything is named
    by plain picklable values, the variant set comes from the per-process
    memo (:func:`repro.harness.pool.cached_variants`), and with ``obs_dir``
    the run's Chrome trace + JSONL manifest are written to their final
    per-run paths by whichever process executes it — the bytes are the
    same either way, because the simulation is seeded and pure.
    """
    from repro.harness.pool import cached_variants

    observer = None
    if obs_dir:
        from repro.obs.export import exporting_observer

        observer = exporting_observer(workload, variant, obs_dir)
    variants = cached_variants(workload, policy, include_prefetch)
    return variants.run(
        variant, observer, faults_seed=faults_seed, verify=verify
    )


def annotate_workload(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    policy: Policy = Policy.PERFORMANCE,
    prefetch: bool = False,
    trace: Trace | None = None,
    capacity_fraction: float = 0.8,
) -> CachierResult:
    """Convenience wrapper: trace (unless given) then annotate."""
    if trace is None:
        trace = trace_program(program, config, params_fn)
    cachier = Cachier(
        program,
        trace,
        params_fn=params_fn,
        cache_size=config.cache_size,
        capacity_fraction=capacity_fraction,
    )
    return cachier.annotate(policy, prefetch=prefetch)
