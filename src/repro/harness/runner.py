"""Run programs on the simulated machine: trace mode and timing mode.

This reproduces the paper's experimental flow (Figure 1):

1. ``trace_program`` — execute the *unannotated* program with per-barrier
   cache flushing and a :class:`TraceCollector` attached (what WWT did), and
   return the trace.
2. ``Cachier(...).annotate(...)`` — produce the annotated program.
3. ``run_program`` — execute any program variant in timing mode (no
   flushing) and report cycles, miss counts and traffic.

Both entry points take an optional :class:`~repro.obs.session.Observer`;
when given, the machine publishes onto the observer's bus and the run's
metrics / epoch timeline / Chrome trace events are attached to the
:class:`RunResult` (``result.obs``).  Observation never changes the
simulated cycles or statistics.
"""

from __future__ import annotations

from typing import Callable

from repro.cachier.annotator import Cachier, CachierResult, Policy
from repro.lang.ast import Program
from repro.lang.interp import Interpreter, SharedStore
from repro.machine.config import MachineConfig
from repro.machine.machine import Machine, RunResult
from repro.obs.events import EventBus
from repro.obs.session import Observer
from repro.trace.collector import TraceCollector
from repro.trace.records import Trace

ParamsFn = Callable[[int], dict]


def trace_program(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    observer: Observer | None = None,
) -> Trace:
    """Collect the per-epoch miss trace of an unannotated program."""
    store = SharedStore(program, block_size=config.block_size)
    collector = TraceCollector(
        labels=store.labels,
        block_size=config.block_size,
        num_nodes=config.num_nodes,
    )
    bus = observer.bus if observer is not None else EventBus()
    collector.subscribe(bus)
    if observer is not None:
        observer.bind_run(
            program, store.labels, block_size=config.block_size,
            params_fn=params_fn, num_nodes=config.num_nodes,
        )
    interp = Interpreter(program, store, params_fn=params_fn)
    result = Machine(config, bus=bus, flush_at_barrier=True).run(interp.kernel)
    if observer is not None:
        observer.finalize(result)
    return collector.finish()


def run_program(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    observer: Observer | None = None,
) -> tuple[RunResult, SharedStore]:
    """Timing run (no trace-mode flushing)."""
    store = SharedStore(program, block_size=config.block_size)
    if observer is not None:
        observer.bind_run(
            program, store.labels, block_size=config.block_size,
            params_fn=params_fn, num_nodes=config.num_nodes,
        )
    interp = Interpreter(program, store, params_fn=params_fn)
    bus = observer.bus if observer is not None else None
    result = Machine(config, flush_at_barrier=False, bus=bus).run(interp.kernel)
    if observer is not None:
        observer.finalize(result)
    return result, store


def annotate_workload(
    program: Program,
    config: MachineConfig,
    params_fn: ParamsFn | None = None,
    policy: Policy = Policy.PERFORMANCE,
    prefetch: bool = False,
    trace: Trace | None = None,
    capacity_fraction: float = 0.8,
) -> CachierResult:
    """Convenience wrapper: trace (unless given) then annotate."""
    if trace is None:
        trace = trace_program(program, config, params_fn)
    cachier = Cachier(
        program,
        trace,
        params_fn=params_fn,
        cache_size=config.cache_size,
        capacity_fraction=capacity_fraction,
    )
    return cachier.annotate(policy, prefetch=prefetch)
