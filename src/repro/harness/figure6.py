"""Figure 6 reproduction: normalized execution times of the five benchmarks.

The paper's figure plots, per benchmark, execution time normalized to the
version without CICO annotations, for the hand-annotated and
Cachier-annotated versions (plus prefetch variants where they mattered —
Matrix Multiply and Ocean).  The qualitative claims this module regenerates:

* Cachier-annotated programs beat the unannotated ones on every benchmark
  that communicates (MM ~16%, Barnes ~11%, Ocean ~20%, Mp3d ~25%);
* Cachier consistently beats the *hand*-annotated versions, spectacularly so
  for Mp3d (~45%);
* prefetch helps the regular programs (MM, Ocean) and buys little for the
  pointer-based Barnes;
* Tomcatv barely moves — it computes rather than communicates.

Run ``python -m repro.harness.figure6`` (or the ``cachier-figure6`` console
script) to print the table.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field

from repro.harness.reporting import render_table
from repro.harness.variants import (
    CACHIER,
    CACHIER_PREFETCH,
    HAND,
    HAND_PREFETCH,
    PLAIN,
    VariantSet,
    build_variants,
)
from repro.workloads.base import get_workload

#: Benchmarks of Section 6 in the paper's presentation order, with the
#: paper's approximate normalized execution time for the Cachier version
#: (without prefetch) for side-by-side comparison.
FIG6_BENCHMARKS = ("barnes", "ocean", "mp3d", "matmul", "tomcatv")
#: extension workloads accepted by --benchmark but not in the paper's figure
EXTRA_BENCHMARKS = ("fft",)
PAPER_CACHIER_NORM = {
    "barnes": 0.89,
    "ocean": 0.80,
    "mp3d": 0.75,
    "matmul": 0.84,
    "tomcatv": 0.97,
}


@dataclass
class Fig6Row:
    benchmark: str
    cycles: dict[str, int] = field(default_factory=dict)

    def normalized(self, variant: str) -> float | None:
        if variant not in self.cycles:
            return None
        return self.cycles[variant] / self.cycles[PLAIN]


def _obs_factory(name: str, obs_dir: str):
    """Per-variant Observer factory that writes a Chrome trace and a JSONL
    manifest under ``obs_dir`` once the variant's run finalizes."""
    from repro.obs.export import write_chrome_trace, write_manifest
    from repro.obs.session import Observer

    os.makedirs(obs_dir, exist_ok=True)

    def factory(variant: str):
        class _ExportingObserver(Observer):
            def finalize(self, result):
                obs = super().finalize(result)
                stem = os.path.join(obs_dir, f"{name}-{variant}".replace("+", "_"))
                write_chrome_trace(obs, stem + ".trace.json")
                write_manifest(obs, stem + ".manifest.jsonl")
                return obs

        return _ExportingObserver(
            profile=True,
            critpath=True,
            meta={"name": f"{name}/{variant}",
                  "benchmark": name, "variant": variant},
        )

    return factory


def run_benchmark(
    name: str,
    include_prefetch: bool = True,
    policy=None,
    obs_dir: str | None = None,
    faults_seed: int | None = None,
    verify: bool = False,
    sweep=None,
    **kwargs,
) -> Fig6Row:
    """One benchmark's row.  ``sweep`` (a
    :class:`~repro.harness.checkpoint.SweepState`) makes the sweep
    restartable: variants it records as completed are not re-run — their
    cycles come from the ledger and their artefacts are already on disk —
    so a resumed sweep produces the same table and the same per-variant
    trace/manifest files as an uninterrupted one."""
    from repro.cachier.annotator import Policy

    spec = get_workload(name, **kwargs)
    variants: VariantSet = build_variants(
        spec,
        policy=policy or Policy.PERFORMANCE,
        include_prefetch=include_prefetch,
    )
    row = Fig6Row(benchmark=name)
    factory = _obs_factory(name, obs_dir) if obs_dir else None
    for variant in variants.programs:
        key = f"{name}/{variant}"
        if sweep is not None and key in sweep.completed:
            row.cycles[variant] = sweep.completed[key]
            continue
        result = variants.run(
            variant,
            factory(variant) if factory else None,
            faults_seed=faults_seed,
            verify=verify,
        )
        row.cycles[variant] = result.cycles
        if sweep is not None:
            sweep.mark(key, result.cycles)
    return row


def run_figure6(
    benchmarks=FIG6_BENCHMARKS, include_prefetch: bool = True, policy=None,
    obs_dir: str | None = None, faults_seed: int | None = None,
    verify: bool = False, checkpoint_dir: str | None = None,
    resume: bool = False,
) -> list[Fig6Row]:
    sweep = None
    if checkpoint_dir is not None:
        from repro.harness.checkpoint import SweepState

        sweep = SweepState(checkpoint_dir)
        if resume:
            sweep.load()
        else:
            sweep.clear()
    return [run_benchmark(name, include_prefetch, policy=policy,
                          obs_dir=obs_dir, faults_seed=faults_seed,
                          verify=verify, sweep=sweep)
            for name in benchmarks]


def render_figure6(rows: list[Fig6Row]) -> str:
    headers = ["benchmark", PLAIN, HAND, CACHIER]
    has_pf = any(CACHIER_PREFETCH in row.cycles for row in rows)
    if has_pf:
        headers += [CACHIER_PREFETCH, HAND_PREFETCH]
    headers.append("paper(cachier)")
    table = []
    for row in rows:
        cells: list[object] = [row.benchmark, 1.0]
        for variant in headers[2 : len(headers) - 1]:
            norm = row.normalized(variant)
            cells.append("-" if norm is None else norm)
        cells.append(PAPER_CACHIER_NORM.get(row.benchmark, "-"))
        table.append(cells)
    return render_table(
        headers,
        table,
        title="Figure 6: execution time normalized to the unannotated program",
    )


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmark",
        action="append",
        choices=FIG6_BENCHMARKS + EXTRA_BENCHMARKS,
        help="run a subset (default: the paper's five; 'fft' is an "
             "extension workload)",
    )
    parser.add_argument(
        "--no-prefetch", action="store_true", help="skip prefetch variants"
    )
    parser.add_argument(
        "--policy", default="performance",
        choices=["performance", "programmer"],
        help="which CICO flavour Cachier emits (the paper ran performance)",
    )
    parser.add_argument(
        "--obs-dir", metavar="DIR",
        help="observe every run and write per-variant Chrome traces "
             "(<bench>-<variant>.trace.json, open in Perfetto) and JSONL "
             "manifests into DIR",
    )
    parser.add_argument(
        "--faults", type=int, metavar="SEED", default=None,
        help="inject the seeded fault tape (repro.faults) into every run; "
             "cycles change, normalized conclusions should survive",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="attach the online coherence invariant checker to every run",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="record each completed (benchmark, variant) run under DIR so "
             "a killed sweep can be restarted with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip (benchmark, variant) runs already recorded as complete "
             "in --checkpoint-dir; the resumed sweep prints the same table "
             "as an uninterrupted one",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    from repro.cachier.annotator import Policy

    names = tuple(args.benchmark) if args.benchmark else FIG6_BENCHMARKS
    rows = run_figure6(
        names,
        include_prefetch=not args.no_prefetch,
        policy=Policy(args.policy),
        obs_dir=args.obs_dir,
        faults_seed=args.faults,
        verify=args.verify,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    print(render_figure6(rows))
    if args.obs_dir:
        print(f"// observability artefacts written to {args.obs_dir}/")
    return 0


def main(argv=None) -> int:
    from repro.cliutil import run_cli

    return run_cli(_main, argv, prog="cachier-figure6")


if __name__ == "__main__":
    raise SystemExit(main())
