"""Figure 6 reproduction: normalized execution times of the five benchmarks.

The paper's figure plots, per benchmark, execution time normalized to the
version without CICO annotations, for the hand-annotated and
Cachier-annotated versions (plus prefetch variants where they mattered —
Matrix Multiply and Ocean).  The qualitative claims this module regenerates:

* Cachier-annotated programs beat the unannotated ones on every benchmark
  that communicates (MM ~16%, Barnes ~11%, Ocean ~20%, Mp3d ~25%);
* Cachier consistently beats the *hand*-annotated versions, spectacularly so
  for Mp3d (~45%);
* prefetch helps the regular programs (MM, Ocean) and buys little for the
  pointer-based Barnes;
* Tomcatv barely moves — it computes rather than communicates.

The sweep is a set of independent (benchmark, variant) runs, and it is
executed through :class:`~repro.harness.pool.SweepPool`: ``--jobs N`` (or
``REPRO_JOBS``) fans the runs out across worker processes with a
byte-identical determinism contract — the table, the per-run obs artefacts
and the sweep ledger are the same bytes at any job count.  ``--jobs 1``
(the default) runs everything inline in this process.  A run that fails
(watchdog, verify violation, worker crash) is retried once and then
reported in a structured error table; the sweep itself completes.

Run ``python -m repro.harness.figure6`` (or the ``cachier-figure6`` console
script) to print the table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.harness.pool import RunTask, SweepPool, render_errors, summarize_failures
from repro.harness.reporting import render_table
from repro.harness.variants import (
    CACHIER,
    CACHIER_PREFETCH,
    HAND,
    HAND_PREFETCH,
    PLAIN,
    VariantSet,
    build_variants,
    planned_variants,
)
from repro.workloads.base import get_workload

#: Benchmarks of Section 6 in the paper's presentation order, with the
#: paper's approximate normalized execution time for the Cachier version
#: (without prefetch) for side-by-side comparison.
FIG6_BENCHMARKS = ("barnes", "ocean", "mp3d", "matmul", "tomcatv")
#: extension workloads accepted by --benchmark but not in the paper's figure
EXTRA_BENCHMARKS = ("fft",)
PAPER_CACHIER_NORM = {
    "barnes": 0.89,
    "ocean": 0.80,
    "mp3d": 0.75,
    "matmul": 0.84,
    "tomcatv": 0.97,
}


@dataclass
class Fig6Row:
    benchmark: str
    cycles: dict[str, int] = field(default_factory=dict)

    def normalized(self, variant: str) -> float | None:
        if variant not in self.cycles:
            return None
        return self.cycles[variant] / self.cycles[PLAIN]


@dataclass
class Fig6Sweep:
    """A completed sweep: one row per benchmark plus the runs that failed
    (empty on a clean sweep — the usual case)."""

    rows: list[Fig6Row]
    errors: list = field(default_factory=list)  # failed RunOutcomes


def _obs_factory(name: str, obs_dir: str):
    """Per-variant Observer factory writing Chrome trace + JSONL manifest
    under ``obs_dir`` (kept for API compatibility; the export path itself
    lives in :func:`repro.obs.export.exporting_observer` so pool workers
    share it)."""
    from repro.obs.export import exporting_observer

    def factory(variant: str):
        return exporting_observer(name, variant, obs_dir)

    return factory


def run_benchmark(
    name: str,
    include_prefetch: bool = True,
    policy=None,
    obs_dir: str | None = None,
    faults_seed: int | None = None,
    verify: bool = False,
    sweep=None,
    **kwargs,
) -> Fig6Row:
    """One benchmark's row, run inline (the single-workload debugging
    entry point; the sweep proper goes through :func:`sweep_figure6`).

    ``sweep`` (a :class:`~repro.harness.checkpoint.SweepState`) makes the
    run restartable: variants it records as completed are not re-run —
    their cycles come from the ledger and their artefacts are already on
    disk — so a resumed sweep produces the same table and the same
    per-variant trace/manifest files as an uninterrupted one."""
    from repro.cachier.annotator import Policy

    spec = get_workload(name, **kwargs)
    variants: VariantSet = build_variants(
        spec,
        policy=policy or Policy.PERFORMANCE,
        include_prefetch=include_prefetch,
    )
    row = Fig6Row(benchmark=name)
    factory = _obs_factory(name, obs_dir) if obs_dir else None
    for variant in variants.programs:
        key = f"{name}/{variant}"
        if sweep is not None and key in sweep.completed:
            row.cycles[variant] = sweep.completed[key]
            continue
        result = variants.run(
            variant,
            factory(variant) if factory else None,
            faults_seed=faults_seed,
            verify=verify,
        )
        row.cycles[variant] = result.cycles
        if sweep is not None:
            sweep.mark(key, result.cycles)
    return row


def plan_tasks(
    benchmarks, include_prefetch: bool = True, policy=None,
    obs_dir: str | None = None, faults_seed: int | None = None,
    verify: bool = False,
) -> list[RunTask]:
    """The sweep's work-list: one pool task per (benchmark, variant), in
    table order.  Enumerating variants needs only the workload spec, not
    the (expensive) trace + annotation — workers pay that, memoised."""
    from repro.cachier.annotator import Policy

    policy = policy or Policy.PERFORMANCE
    tasks = []
    for name in benchmarks:
        spec = get_workload(name)
        for variant in planned_variants(spec, include_prefetch):
            tasks.append(RunTask.make(
                "figure6", f"{name}/{variant}",
                workload=name, variant=variant, policy=policy.value,
                include_prefetch=include_prefetch, obs_dir=obs_dir,
                faults_seed=faults_seed, verify=verify,
            ))
    return tasks


def sweep_figure6(
    benchmarks=FIG6_BENCHMARKS, include_prefetch: bool = True, policy=None,
    obs_dir: str | None = None, faults_seed: int | None = None,
    verify: bool = False, checkpoint_dir: str | None = None,
    resume: bool = False, jobs: int | None = None,
) -> Fig6Sweep:
    """Run the Figure-6 sweep through the process pool.

    With ``checkpoint_dir`` the ``figure6.sweep.json`` ledger is the work
    queue: completed runs are not resubmitted (their cycles come from the
    ledger), each finishing run is marked incrementally in deterministic
    (submission) order, and a killed sweep — serial or parallel — resumes
    only the missing runs.  Resuming against a ledger whose runs are not a
    subset of this sweep's plan (flags changed between invocations) is a
    :class:`~repro.errors.CheckpointError` ("ledger conflict") rather than
    a silently wrong table.
    """
    tasks = plan_tasks(
        benchmarks, include_prefetch, policy=policy, obs_dir=obs_dir,
        faults_seed=faults_seed, verify=verify,
    )
    sweep = None
    if checkpoint_dir is not None:
        from repro.harness.checkpoint import SweepState

        sweep = SweepState(checkpoint_dir)
        if resume:
            sweep.load()
            sweep.check_plan(task.key for task in tasks)
        else:
            sweep.clear()

    rows = {name: Fig6Row(benchmark=name) for name in benchmarks}
    if sweep is not None:
        for key, cycles in sweep.completed.items():
            name, variant = key.split("/", 1)
            rows[name].cycles[variant] = cycles
    todo = [
        task for task in tasks
        if sweep is None or task.key not in sweep.completed
    ]

    def on_result(outcome):
        if not outcome.ok:
            return
        name, variant = outcome.task.key.split("/", 1)
        rows[name].cycles[variant] = outcome.value["cycles"]
        if sweep is not None:
            sweep.mark(outcome.task.key, outcome.value["cycles"])

    outcomes = SweepPool(jobs=jobs).run(todo, on_result)
    errors = [out for out in outcomes if not out.ok]
    return Fig6Sweep(rows=[rows[name] for name in benchmarks], errors=errors)


def run_figure6(
    benchmarks=FIG6_BENCHMARKS, include_prefetch: bool = True, policy=None,
    obs_dir: str | None = None, faults_seed: int | None = None,
    verify: bool = False, checkpoint_dir: str | None = None,
    resume: bool = False, jobs: int | None = None,
) -> list[Fig6Row]:
    """Library entry point: the sweep's rows, raising
    :class:`~repro.errors.PoolError` if any run failed."""
    sweep = sweep_figure6(
        benchmarks, include_prefetch, policy=policy, obs_dir=obs_dir,
        faults_seed=faults_seed, verify=verify,
        checkpoint_dir=checkpoint_dir, resume=resume, jobs=jobs,
    )
    if sweep.errors:
        raise summarize_failures(sweep.errors, total=len(sweep.errors) + sum(
            len(row.cycles) for row in sweep.rows
        ))
    return sweep.rows


def render_figure6(rows: list[Fig6Row]) -> str:
    headers = ["benchmark", PLAIN, HAND, CACHIER]
    has_pf = any(CACHIER_PREFETCH in row.cycles for row in rows)
    if has_pf:
        headers += [CACHIER_PREFETCH, HAND_PREFETCH]
    headers.append("paper(cachier)")
    table = []
    for row in rows:
        cells: list[object] = [row.benchmark, 1.0 if PLAIN in row.cycles else "-"]
        for variant in headers[2 : len(headers) - 1]:
            norm = row.normalized(variant)
            cells.append("-" if norm is None else norm)
        cells.append(PAPER_CACHIER_NORM.get(row.benchmark, "-"))
        table.append(cells)
    return render_table(
        headers,
        table,
        title="Figure 6: execution time normalized to the unannotated program",
    )


def _main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    from repro.cliutil import add_version

    add_version(parser, "cachier-figure6")
    parser.add_argument(
        "--benchmark",
        action="append",
        choices=FIG6_BENCHMARKS + EXTRA_BENCHMARKS,
        help="run a subset (default: the paper's five; 'fft' is an "
             "extension workload)",
    )
    parser.add_argument(
        "--no-prefetch", action="store_true", help="skip prefetch variants"
    )
    parser.add_argument(
        "--policy", default="performance",
        choices=["performance", "programmer"],
        help="which CICO flavour Cachier emits (the paper ran performance)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run the sweep's (benchmark, variant) runs across N worker "
             "processes (0 = one per CPU; default $REPRO_JOBS or 1 = "
             "inline).  Output is byte-identical at any N.",
    )
    parser.add_argument(
        "--obs-dir", metavar="DIR",
        help="observe every run and write per-variant Chrome traces "
             "(<bench>-<variant>.trace.json, open in Perfetto) and JSONL "
             "manifests into DIR",
    )
    parser.add_argument(
        "--faults", type=int, metavar="SEED", default=None,
        help="inject the seeded fault tape (repro.faults) into every run; "
             "cycles change, normalized conclusions should survive",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="attach the online coherence invariant checker to every run",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="record each completed (benchmark, variant) run under DIR so "
             "a killed sweep can be restarted with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip (benchmark, variant) runs already recorded as complete "
             "in --checkpoint-dir; the resumed sweep prints the same table "
             "as an uninterrupted one",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    from repro.cachier.annotator import Policy

    names = tuple(args.benchmark) if args.benchmark else FIG6_BENCHMARKS
    sweep = sweep_figure6(
        names,
        include_prefetch=not args.no_prefetch,
        policy=Policy(args.policy),
        obs_dir=args.obs_dir,
        faults_seed=args.faults,
        verify=args.verify,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        jobs=args.jobs,
    )
    print(render_figure6(sweep.rows))
    if args.obs_dir:
        print(f"// observability artefacts written to {args.obs_dir}/")
    if sweep.errors:
        print(render_errors(sweep.errors))
        total = len(sweep.errors) + sum(len(r.cycles) for r in sweep.rows)
        raise summarize_failures(sweep.errors, total=total)
    return 0


def main(argv=None) -> int:
    from repro.cliutil import run_cli

    return run_cli(_main, argv, prog="cachier-figure6")


if __name__ == "__main__":
    raise SystemExit(main())
