"""Figure 6 reproduction: normalized execution times of the five benchmarks.

The paper's figure plots, per benchmark, execution time normalized to the
version without CICO annotations, for the hand-annotated and
Cachier-annotated versions (plus prefetch variants where they mattered —
Matrix Multiply and Ocean).  The qualitative claims this module regenerates:

* Cachier-annotated programs beat the unannotated ones on every benchmark
  that communicates (MM ~16%, Barnes ~11%, Ocean ~20%, Mp3d ~25%);
* Cachier consistently beats the *hand*-annotated versions, spectacularly so
  for Mp3d (~45%);
* prefetch helps the regular programs (MM, Ocean) and buys little for the
  pointer-based Barnes;
* Tomcatv barely moves — it computes rather than communicates.

Run ``python -m repro.harness.figure6`` (or the ``cachier-figure6`` console
script) to print the table.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.harness.reporting import render_table
from repro.harness.variants import (
    CACHIER,
    CACHIER_PREFETCH,
    HAND,
    HAND_PREFETCH,
    PLAIN,
    VariantSet,
    build_variants,
)
from repro.workloads.base import get_workload

#: Benchmarks of Section 6 in the paper's presentation order, with the
#: paper's approximate normalized execution time for the Cachier version
#: (without prefetch) for side-by-side comparison.
FIG6_BENCHMARKS = ("barnes", "ocean", "mp3d", "matmul", "tomcatv")
#: extension workloads accepted by --benchmark but not in the paper's figure
EXTRA_BENCHMARKS = ("fft",)
PAPER_CACHIER_NORM = {
    "barnes": 0.89,
    "ocean": 0.80,
    "mp3d": 0.75,
    "matmul": 0.84,
    "tomcatv": 0.97,
}


@dataclass
class Fig6Row:
    benchmark: str
    cycles: dict[str, int] = field(default_factory=dict)

    def normalized(self, variant: str) -> float | None:
        if variant not in self.cycles:
            return None
        return self.cycles[variant] / self.cycles[PLAIN]


def run_benchmark(
    name: str,
    include_prefetch: bool = True,
    policy=None,
    **kwargs,
) -> Fig6Row:
    from repro.cachier.annotator import Policy

    spec = get_workload(name, **kwargs)
    variants: VariantSet = build_variants(
        spec,
        policy=policy or Policy.PERFORMANCE,
        include_prefetch=include_prefetch,
    )
    row = Fig6Row(benchmark=name)
    for variant, result in variants.run_all().items():
        row.cycles[variant] = result.cycles
    return row


def run_figure6(
    benchmarks=FIG6_BENCHMARKS, include_prefetch: bool = True, policy=None
) -> list[Fig6Row]:
    return [run_benchmark(name, include_prefetch, policy=policy)
            for name in benchmarks]


def render_figure6(rows: list[Fig6Row]) -> str:
    headers = ["benchmark", PLAIN, HAND, CACHIER]
    has_pf = any(CACHIER_PREFETCH in row.cycles for row in rows)
    if has_pf:
        headers += [CACHIER_PREFETCH, HAND_PREFETCH]
    headers.append("paper(cachier)")
    table = []
    for row in rows:
        cells: list[object] = [row.benchmark, 1.0]
        for variant in headers[2 : len(headers) - 1]:
            norm = row.normalized(variant)
            cells.append("-" if norm is None else norm)
        cells.append(PAPER_CACHIER_NORM.get(row.benchmark, "-"))
        table.append(cells)
    return render_table(
        headers,
        table,
        title="Figure 6: execution time normalized to the unannotated program",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--benchmark",
        action="append",
        choices=FIG6_BENCHMARKS + EXTRA_BENCHMARKS,
        help="run a subset (default: the paper's five; 'fft' is an "
             "extension workload)",
    )
    parser.add_argument(
        "--no-prefetch", action="store_true", help="skip prefetch variants"
    )
    parser.add_argument(
        "--policy", default="performance",
        choices=["performance", "programmer"],
        help="which CICO flavour Cachier emits (the paper ran performance)",
    )
    args = parser.parse_args(argv)
    from repro.cachier.annotator import Policy

    names = tuple(args.benchmark) if args.benchmark else FIG6_BENCHMARKS
    rows = run_figure6(
        names,
        include_prefetch=not args.no_prefetch,
        policy=Policy(args.policy),
    )
    print(render_figure6(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
