"""Build every measured variant of a workload.

Figure 6 compares, per benchmark: the unannotated program, the
hand-annotated program, and the Cachier-annotated program (for Matrix
Multiply and Ocean also with prefetch).  This module packages that: trace
once, annotate, return all runnable programs keyed by variant name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from repro.cachier.annotator import Cachier, CachierResult, Policy
from repro.harness.runner import run_program, trace_program
from repro.lang.ast import Program
from repro.machine.machine import RunResult
from repro.obs.session import Observer
from repro.trace.records import Trace
from repro.workloads.base import WorkloadSpec

PLAIN = "plain"
HAND = "hand"
HAND_PREFETCH = "hand+pf"
CACHIER = "cachier"
CACHIER_PREFETCH = "cachier+pf"


@dataclass
class VariantSet:
    spec: WorkloadSpec
    trace: Trace
    cachier: Cachier
    programs: dict[str, Program] = field(default_factory=dict)
    results: dict[str, CachierResult] = field(default_factory=dict)

    def run(
        self,
        variant: str,
        observer: Observer | None = None,
        *,
        faults_seed: int | None = None,
        verify: bool = False,
    ) -> RunResult:
        result, _ = run_program(
            self.programs[variant], self.spec.config, self.spec.params_fn,
            observer=observer, faults_seed=faults_seed, verify=verify,
            verify_label=f"{self.spec.name}/{variant}",
        )
        return result

    def run_all(
        self,
        observer_factory: Callable[[str], Observer | None] | None = None,
    ) -> dict[str, RunResult]:
        """Run every variant; ``observer_factory(variant)`` may supply a
        fresh Observer per run (None to leave a variant unobserved)."""
        return {
            variant: self.run(
                variant,
                observer_factory(variant) if observer_factory else None,
            )
            for variant in self.programs
        }


def planned_variants(
    spec: WorkloadSpec, include_prefetch: bool = True
) -> tuple[str, ...]:
    """The variant names :func:`build_variants` will produce for ``spec``,
    in its insertion order, *without* paying for the trace + annotation.

    The sweep planner uses this to enumerate (workload, variant) tasks up
    front — the pool needs the full work-list before any build runs, and a
    resumed sweep needs it to cross-check the ledger.  Kept in lockstep
    with :func:`build_variants` (a test pins the equivalence).
    """
    names = [PLAIN]
    if spec.hand_program is not None:
        names.append(HAND)
    if spec.hand_prefetch_program is not None and include_prefetch:
        names.append(HAND_PREFETCH)
    names.append(CACHIER)
    if include_prefetch:
        names.append(CACHIER_PREFETCH)
    return tuple(names)


def build_variants(
    spec: WorkloadSpec,
    policy: Policy = Policy.PERFORMANCE,
    include_prefetch: bool = True,
    history: int = 1,
) -> VariantSet:
    trace = trace_program(spec.program, spec.config, spec.params_fn)
    cachier = Cachier(
        spec.program,
        trace,
        params_fn=spec.params_fn,
        cache_size=spec.cachier_cache_size,
    )
    vs = VariantSet(spec=spec, trace=trace, cachier=cachier)
    vs.programs[PLAIN] = spec.program
    if spec.hand_program is not None:
        vs.programs[HAND] = spec.hand_program
    if spec.hand_prefetch_program is not None and include_prefetch:
        vs.programs[HAND_PREFETCH] = spec.hand_prefetch_program
    auto = cachier.annotate(policy, history=history)
    vs.results[CACHIER] = auto
    vs.programs[CACHIER] = auto.program
    if include_prefetch:
        auto_pf = cachier.annotate(policy, prefetch=True, history=history)
        vs.results[CACHIER_PREFETCH] = auto_pf
        vs.programs[CACHIER_PREFETCH] = auto_pf.program
    return vs
