"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence

#: strings treated as "no value" when deciding column alignment
PLACEHOLDERS = {"", "-", "*"}


def format_cell(value: object) -> str:
    """One cell's display text: floats get three decimals, everything else
    ``str()``.  Shared by the plain-text tables here and the HTML tables in
    :mod:`repro.service.reports`, so a number renders identically in the
    terminal and on a dashboard."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def is_numeric_column(rows: Sequence[Sequence[object]], col: int) -> bool:
    """True when every cell is an int/float (placeholder strings ignored)."""
    saw_number = False
    for row in rows:
        value = row[col]
        if isinstance(value, bool):
            return False
        if isinstance(value, (int, float)):
            saw_number = True
        elif not (isinstance(value, str) and value in PLACEHOLDERS):
            return False
    return saw_number


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table; floats are shown with three decimals.

    Numeric columns (every cell an int/float, ignoring placeholder strings
    like ``""``, ``"-"`` or ``"*"``) are right-aligned.
    """
    grid = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in grid)) if grid
        else len(headers[col])
        for col in range(len(headers))
    ]
    right = [is_numeric_column(rows, col) for col in range(len(headers))]

    def align(text: str, col: int) -> str:
        return text.rjust(widths[col]) if right[col] else text.ljust(widths[col])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(align(h, c) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(align(v, c) for c, v in enumerate(row)))
    return "\n".join(lines) + "\n"
