"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table; floats are shown with three decimals."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in grid)) if grid
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in grid:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
