"""Experiment harness: tracing, annotation, timing runs, paper tables."""

from repro.harness.runner import run_program, trace_program, annotate_workload

__all__ = ["run_program", "trace_program", "annotate_workload"]
