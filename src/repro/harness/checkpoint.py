"""Barrier-checkpoint persistence for long harness runs.

Two small pieces:

* :class:`Checkpointer` — stores one run's latest barrier snapshot
  (:meth:`Machine.snapshot` plus the shared-store values) as a JSON file,
  written atomically so a kill mid-write can never leave a half-checkpoint
  behind — the previous complete one survives.
* :class:`SweepState` — records which (benchmark, variant) runs of a sweep
  already finished and their headline numbers, so a restarted
  ``cachier-figure6 --resume`` skips straight past completed work and still
  prints the same table (and leaves the same per-variant artefacts on disk)
  as an uninterrupted sweep.  Under the parallel executor
  (:mod:`repro.harness.pool`) the ledger doubles as the sweep's work queue:
  completed runs are never resubmitted, finishing runs are marked
  incrementally in deterministic submission order (only the parent process
  writes the ledger), and :meth:`SweepState.check_plan` refuses to resume
  against a ledger that belongs to a differently-shaped sweep.

Both tolerate missing files (first run) and refuse corrupt ones with a
:class:`~repro.errors.CheckpointError` naming the path, rather than
silently starting the work over.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import CheckpointError
from repro.util.atomic_write import atomic_write_json as _atomic_write_json


def _read_json(path: Path) -> dict | None:
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="ascii") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"corrupt checkpoint file {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"corrupt checkpoint file {path}: not an object")
    return payload


class Checkpointer:
    """Latest-barrier snapshot store for one named run."""

    def __init__(self, directory: str | Path, name: str):
        self.directory = Path(directory)
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        self.path = self.directory / f"{safe}.ckpt.json"

    def save(self, snapshot: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path, snapshot)

    def load(self) -> dict | None:
        """The last complete snapshot, or None if none was ever written."""
        return _read_json(self.path)

    def clear(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


class SweepState:
    """Completed-run ledger of a figure6 sweep (``figure6.sweep.json``)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.path = self.directory / "figure6.sweep.json"
        self.completed: dict[str, int] = {}

    def load(self) -> "SweepState":
        payload = _read_json(self.path)
        if payload is not None:
            self.completed = {str(k): int(v) for k, v in payload.items()}
        return self

    def check_plan(self, planned_keys) -> None:
        """Refuse to resume when the ledger records runs this sweep does
        not plan (the flags changed between invocations) — a "ledger
        conflict".  Resuming anyway would silently drop those runs' cycles
        from the table while leaving their artefacts on disk."""
        unknown = sorted(set(self.completed) - set(planned_keys))
        if unknown:
            raise CheckpointError(
                f"sweep ledger conflict: {self.path} records run(s) not in "
                f"this sweep ({', '.join(unknown)}); the sweep flags "
                "changed between invocations — rerun with the original "
                "flags or use a fresh --checkpoint-dir"
            )

    def mark(self, key: str, cycles: int) -> None:
        self.completed[key] = int(cycles)
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.path, self.completed)

    def clear(self) -> None:
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
