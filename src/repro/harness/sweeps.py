"""Parameter-sweep experiments: sensitivity of the CICO gains.

The paper evaluates one machine point (32 nodes, 256 KB caches).  These
sweeps answer the obvious next questions a systems reader asks:

* :func:`sweep_nodes` — does Cachier's relative gain grow with the
  processor count?  (It should: boundary blocks and sharer counts scale
  with P, so there are more recalls and bigger Dir1SW traps to remove.)
* :func:`sweep_cache_size` — how does cache capacity change the picture?
  (Tiny caches drown coherence in capacity misses; big caches retain stale
  exclusive copies, so check-ins matter more.)
* :func:`sweep_block_size` — larger blocks mean more false sharing and
  coarser check-out granularity.

Each returns rows ``[value, plain_cycles, cachier_cycles, normalized]``.
"""

from __future__ import annotations

from typing import Callable

from repro.cachier.annotator import Cachier, Policy
from repro.harness.runner import run_program, trace_program
from repro.workloads.base import WorkloadSpec, get_workload


def _measure(spec: WorkloadSpec) -> tuple[int, int]:
    trace = trace_program(spec.program, spec.config, spec.params_fn)
    cachier = Cachier(
        spec.program, trace, params_fn=spec.params_fn,
        cache_size=spec.cachier_cache_size,
    )
    annotated = cachier.annotate(Policy.PERFORMANCE).program
    plain, _ = run_program(spec.program, spec.config, spec.params_fn)
    annot, _ = run_program(annotated, spec.config, spec.params_fn)
    return plain.cycles, annot.cycles


def _sweep(make_spec: Callable[[object], WorkloadSpec], values) -> list:
    rows = []
    for value in values:
        spec = make_spec(value)
        plain, annot = _measure(spec)
        rows.append([value, plain, annot, annot / plain])
    return rows


def sweep_nodes(workload: str = "ocean", nodes=(4, 8, 16), **kwargs) -> list:
    return _sweep(
        lambda n: get_workload(workload, num_nodes=n, **kwargs), nodes
    )


def sweep_cache_size(
    workload: str = "matmul", sizes=(4096, 8192, 32768), **kwargs
) -> list:
    return _sweep(
        lambda s: get_workload(workload, cache_size=s, **kwargs), sizes
    )


def sweep_block_size(
    workload: str = "ocean", blocks=(16, 32, 64), **kwargs
) -> list:
    def make(block: int) -> WorkloadSpec:
        spec = get_workload(workload, **kwargs)
        spec.config = spec.config.scaled(block_size=block)
        return spec

    return _sweep(make, blocks)
