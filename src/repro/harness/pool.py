"""Process-pool sweep executor with a byte-identical determinism contract.

Every sweep the harness runs — the Figure-6 table, ``repro-obs bench``
baselines, ``repro-verify`` coverage — is a set of *independent* simulation
runs: (workload, variant, faults seed) triples that share no state.  This
module fans those runs out across worker processes, WWT-style (the
Wisconsin Wind Tunnel parallelized its simulations across CM-5 nodes), with
three guarantees the rest of the repo builds on:

**Determinism.**  A parallel sweep produces byte-identical artefacts to the
serial one: per-run manifests and Chrome traces are written by whichever
worker executed the run, but the simulation is seeded and pure so the bytes
cannot depend on scheduling; parent-side outputs (tables, ledgers, PASS
lines) are produced through :class:`SweepPool`'s *ordered* completion
callback — results are released to the caller in submission order, never in
completion order.  ``tests/harness/test_parallel_determinism.py`` and the
``sweep-parallel`` CI job diff the two paths byte for byte.

**Graceful worker failure.**  A run that raises a
:class:`~repro.errors.ReproError` (a watchdog kill, a verify violation, a
corrupt input) fails only itself: the worker returns a structured error
outcome and the sweep continues.  A run whose worker process *dies*
(segfault, ``os._exit``, OOM kill) breaks the executor; the pool rebuilds
it and re-runs every unharvested task in an isolated single-worker pool so
the crash can be attributed to exactly one task.  Either way the task is
retried once and, if it fails again, the sweep completes with a structured
per-run error row instead of dying.

**In-process debugging.**  ``jobs=1`` (the default without ``--jobs`` /
``REPRO_JOBS``) executes every task inline in the parent process — same
code path, same callbacks, no subprocesses — so ``pdb`` and monkeypatching
work exactly as before the pool existed.

See ``docs/parallelism.md`` for the full contract.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import PoolError, ReproError

#: environment variable naming a task key whose worker hard-crashes
#: (``os._exit``) — the fault-injection hook the crash tests and CI use.
CRASH_ENV = "REPRO_POOL_CRASH"
#: environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"
#: exit status of a deliberately crashed worker (test hook).
_CRASH_STATUS = 32


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit ``jobs`` wins, then ``$REPRO_JOBS``, then 1.

    ``0`` (either source) means "auto": one worker per available CPU.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV)
        if env is None or not env.strip():
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise PoolError(
                f"{JOBS_ENV} must be an integer (0 = one per CPU), "
                f"got {env!r}"
            ) from None
    if jobs < 0:
        raise PoolError(f"--jobs must be >= 0 (0 = one per CPU), got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class RunTask:
    """One independent simulation run, picklable for worker dispatch.

    ``kind`` selects the executor function (see ``_EXECUTORS``), ``key``
    uniquely names the run inside its sweep (``"mp3d/cachier"``), and
    ``payload`` holds the executor's keyword arguments — plain data only.
    """

    kind: str
    key: str
    payload: tuple = ()  # sorted (name, value) pairs; dicts don't hash

    @staticmethod
    def make(kind: str, key: str, **payload) -> "RunTask":
        return RunTask(kind=kind, key=key, payload=tuple(sorted(payload.items())))

    @property
    def kwargs(self) -> dict:
        return dict(self.payload)


@dataclass
class RunOutcome:
    """What became of one task: a value, or a structured error."""

    task: RunTask
    ok: bool
    value: object = None
    #: ``{"kind": exception class, "message": one line, "crash": bool}``
    error: dict | None = None
    attempts: int = 1

    def error_row(self) -> list:
        """Render as one row of the per-run error table."""
        err = self.error or {}
        return [
            self.task.key,
            self.attempts,
            err.get("kind", "?"),
            err.get("message", ""),
        ]


ERROR_HEADERS = ["run", "attempts", "error", "detail"]


def render_errors(outcomes: list[RunOutcome]) -> str:
    from repro.harness.reporting import render_table

    return render_table(
        ERROR_HEADERS,
        [out.error_row() for out in outcomes if not out.ok],
        title="failed runs (sweep completed; exit status will be 2)",
    )


def summarize_failures(outcomes: list[RunOutcome], total: int) -> PoolError:
    """The one-line diagnostic ``run_cli`` prints for a failed sweep."""
    failed = [out for out in outcomes if not out.ok]
    first = failed[0]
    err = first.error or {}
    return PoolError(
        f"{len(failed)} of {total} sweep runs failed "
        f"(first: {first.task.key}: {err.get('message', 'unknown error')} "
        f"after {first.attempts} attempt(s))"
    )


# --------------------------------------------------------------- executors
#
# Worker-side task bodies.  Each takes only picklable keyword arguments and
# returns only picklable values; each rebuilds whatever heavyweight context
# it needs (variant sets are memoised per worker process, below).

def _exec_probe(value=None, fail=False, sleep=0.0):
    """Test-only task: echo ``value``, optionally failing."""
    if sleep:
        import time

        time.sleep(sleep)
    if fail:
        raise PoolError(f"probe task failed deliberately (value={value!r})")
    return value


def _exec_figure6(
    workload, variant, policy="performance", include_prefetch=True,
    obs_dir=None, faults_seed=None, verify=False,
):
    """One Figure-6 cell: run ``variant`` of ``workload``, exporting obs
    artefacts when ``obs_dir`` is set, and return its cycle count."""
    from repro.harness.runner import run_workload_variant

    result = run_workload_variant(
        workload, variant, policy=policy, include_prefetch=include_prefetch,
        obs_dir=obs_dir, faults_seed=faults_seed, verify=verify,
    )
    return {"cycles": result.cycles}


def _exec_bench(workload, out_dir, variants=None, trace_dir=None,
                timings=False, verify=False):
    """One ``repro-obs bench`` unit: bench a whole workload, write its
    BENCH file, return the headline cycles per variant.

    With ``timings`` the run executes under hostprof phase accounting and
    the per-variant host measurements ride back in the return value (never
    in the BENCH file — its bytes must stay host-independent); the parent
    appends them to the perf-history ledger in submission order."""
    from repro.obs.baseline import bench_workload, write_bench

    kwargs = {}
    if variants:
        kwargs["variants"] = tuple(variants)
    if trace_dir:
        kwargs["trace_dir"] = trace_dir
    if verify:
        kwargs["verify"] = True
    host: dict = {}
    if timings:
        kwargs["timings"] = host
    bench = bench_workload(workload, **kwargs)
    path = write_bench(bench, out_dir)
    out = {
        "path": path,
        "cycles": {v: rec["cycles"] for v, rec in bench["variants"].items()},
    }
    if timings:
        out["timings"] = host
    return out


def _exec_verify(
    workload, variant, policy="performance", faults_seed=None, strict=False,
):
    """One ``repro-verify`` unit.  A :class:`VerifyError` is a *domain*
    failure, not a pool failure: it is caught here and returned as a value
    (``ok=False`` plus the failure report) so it is not pointlessly
    retried; watchdog kills and crashes still go through pool retry."""
    from repro.errors import VerifyError
    from repro.harness.runner import run_program
    from repro.workloads.base import get_workload

    spec = get_workload(workload)
    vs = cached_variants(workload, policy, include_prefetch=True)
    program = vs.programs.get(variant)
    label = f"{workload}/{variant}"
    if program is None:
        return {"label": label, "skipped": True}
    try:
        result, _ = run_program(
            program, spec.config, spec.params_fn,
            faults_seed=faults_seed, verify=True,
            strict_verify=strict, verify_label=label,
        )
    except VerifyError as exc:
        report = getattr(exc, "report", None)
        return {
            "label": label,
            "ok": False,
            "error": str(exc).splitlines()[0],
            "report": (
                report.as_dict() if report is not None
                else {"label": label, "ok": False, "error": str(exc)}
            ),
        }
    report = result.extra["verify_report"]
    return {
        "label": label,
        "ok": True,
        "checks": sum(report.checks.values()),
        "warnings": len(report.warnings),
        "report": report.as_dict(),
    }


def _exec_mc(config, states, mutate=None):
    """One model-checker frontier partition: expand every state in the
    chunk under the given exploration config (see
    :func:`repro.mc.explore.exec_mc_wave`)."""
    from repro.mc.explore import exec_mc_wave

    return exec_mc_wave(config, states, mutate=mutate)


_EXECUTORS = {
    "probe": _exec_probe,
    "figure6": _exec_figure6,
    "bench": _exec_bench,
    "verify": _exec_verify,
    "mc": _exec_mc,
}

#: per-process variant-set memo: building a workload's variants (trace +
#: annotate) dominates short runs, and several tasks of one sweep usually
#: land on the same worker.  Bounded; cleared by the pool per sweep in the
#: inline path so serial semantics match the pre-pool harness exactly.
_VARIANT_CACHE: OrderedDict = OrderedDict()
_VARIANT_CACHE_MAX = 3


def cached_variants(workload: str, policy, include_prefetch: bool):
    """Per-worker memoised :func:`~repro.harness.variants.build_variants`."""
    from repro.cachier.annotator import Policy
    from repro.harness.variants import build_variants
    from repro.workloads.base import get_workload

    policy = Policy(policy)
    cache_key = (workload, policy.value, bool(include_prefetch))
    hit = _VARIANT_CACHE.get(cache_key)
    if hit is not None:
        _VARIANT_CACHE.move_to_end(cache_key)
        return hit
    vs = build_variants(
        get_workload(workload), policy=policy,
        include_prefetch=include_prefetch,
    )
    _VARIANT_CACHE[cache_key] = vs
    while len(_VARIANT_CACHE) > _VARIANT_CACHE_MAX:
        _VARIANT_CACHE.popitem(last=False)
    return vs


def clear_variant_cache() -> None:
    _VARIANT_CACHE.clear()


def _execute_task(task: RunTask) -> RunOutcome:
    """Worker entry point: run one task, never let a ReproError escape."""
    if os.environ.get(CRASH_ENV) == task.key:
        os._exit(_CRASH_STATUS)  # simulated hard crash (tests, CI)
    fn = _EXECUTORS.get(task.kind)
    if fn is None:
        return RunOutcome(
            task, ok=False,
            error={"kind": "PoolError",
                   "message": f"unknown pool task kind {task.kind!r}"},
        )
    try:
        return RunOutcome(task, ok=True, value=fn(**task.kwargs))
    except ReproError as exc:
        text = str(exc)
        first = text.splitlines()[0] if text else type(exc).__name__
        return RunOutcome(
            task, ok=False,
            error={"kind": type(exc).__name__, "message": first},
        )
    # anything else is a programming error: let it propagate (the parent
    # re-raises it and the sweep aborts loudly, same as the serial path)


_CRASH_ERROR = {
    "kind": "WorkerCrash",
    "message": "worker process died (crash or kill); run retried in "
               "isolation and lost again",
    "crash": True,
}


@dataclass
class SweepPool:
    """Fan independent :class:`RunTask`\\ s out across worker processes.

    ``run(tasks, on_result)`` executes every task and returns one
    :class:`RunOutcome` per task, in task order.  ``on_result`` is invoked
    *incrementally but in submission order* — outcome ``i`` is delivered
    only after outcomes ``0..i-1`` — which is what makes parent-side
    streaming output (ledger marks, PASS lines, table rows) deterministic
    under arbitrary completion order.

    ``jobs == 1`` executes inline (no subprocess); a simulated crash via
    :data:`CRASH_ENV` then becomes a structured error row rather than
    killing the parent.  Failed tasks are retried ``retries`` times before
    their error outcome is finalized.
    """

    jobs: int | None = None
    retries: int = 1
    _delivered: int = field(default=0, repr=False)

    def __post_init__(self):
        self.jobs = resolve_jobs(self.jobs)

    # ------------------------------------------------------------------ api
    def run(self, tasks: list[RunTask], on_result=None) -> list[RunOutcome]:
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dup = sorted({k for k in keys if keys.count(k) > 1})
            raise PoolError(f"duplicate sweep task key(s): {', '.join(dup)}")
        if not tasks:
            return []
        self._delivered = 0
        if self.jobs == 1:
            return self._run_inline(tasks, on_result)
        return self._run_parallel(tasks, on_result)

    # ------------------------------------------------------------- plumbing
    def _deliver(self, outcomes, on_result) -> None:
        """Release the contiguous finished prefix, in submission order."""
        while (self._delivered < len(outcomes)
               and outcomes[self._delivered] is not None):
            if on_result is not None:
                on_result(outcomes[self._delivered])
            self._delivered += 1

    def _max_attempts(self) -> int:
        return 1 + max(0, self.retries)

    # --------------------------------------------------------------- inline
    def _run_inline(self, tasks, on_result) -> list[RunOutcome]:
        clear_variant_cache()  # serial sweeps build fresh, like pre-pool
        try:
            outcomes: list[RunOutcome | None] = [None] * len(tasks)
            crash_key = os.environ.get(CRASH_ENV)
            for i, task in enumerate(tasks):
                attempts = 0
                while True:
                    attempts += 1
                    if task.key == crash_key:
                        out = RunOutcome(
                            task, ok=False, error=dict(_CRASH_ERROR)
                        )
                    else:
                        out = _execute_task(task)
                    if out.ok or attempts >= self._max_attempts():
                        out.attempts = attempts
                        outcomes[i] = out
                        break
                self._deliver(outcomes, on_result)
            return outcomes  # type: ignore[return-value]
        finally:
            clear_variant_cache()

    # ------------------------------------------------------------- parallel
    def _run_parallel(self, tasks, on_result) -> list[RunOutcome]:
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        n = len(tasks)
        outcomes: list[RunOutcome | None] = [None] * n
        attempts = [0] * n
        executor = ProcessPoolExecutor(max_workers=min(self.jobs, n))
        futures: dict = {}
        suspects: list[int] = []
        broken = False
        try:
            for i, task in enumerate(tasks):
                attempts[i] = 1
                futures[executor.submit(_execute_task, task)] = i
            while futures and not broken:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures.pop(future)
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        # A worker died.  Whatever was still in flight is
                        # unattributable here; re-run it all in isolation.
                        broken = True
                        suspects.append(i)
                        break
                    if exc is not None:
                        raise exc  # programming error from a worker
                    out = future.result()
                    if out.ok or attempts[i] >= self._max_attempts():
                        out.attempts = attempts[i]
                        outcomes[i] = out
                    else:
                        attempts[i] += 1
                        futures[executor.submit(_execute_task, tasks[i])] = i
                self._deliver(outcomes, on_result)
            if broken:
                # Harvest whatever completed before the break, then take
                # the rest (including any not-yet-retried failures) to the
                # isolated path.
                for future, i in futures.items():
                    out = None
                    if future.done() and not isinstance(
                        future.exception(), BrokenProcessPool
                    ):
                        exc = future.exception()
                        if exc is not None:
                            raise exc
                        out = future.result()
                    if out is not None and (
                        out.ok or attempts[i] >= self._max_attempts()
                    ):
                        out.attempts = attempts[i]
                        outcomes[i] = out
                    else:
                        suspects.append(i)
                futures.clear()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if broken:
            self._run_isolated(tasks, sorted(suspects), outcomes, attempts,
                               on_result)
        self._deliver(outcomes, on_result)
        return outcomes  # type: ignore[return-value]

    def _run_isolated(self, tasks, indices, outcomes, attempts, on_result):
        """Crash-recovery path: one task at a time, each in its own fresh
        single-worker pool, so a repeat crash is attributable to exactly
        the task that was running.  Slower than the main pool — it only
        runs after a worker has already died."""
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        for i in indices:
            while outcomes[i] is None:
                executor = ProcessPoolExecutor(max_workers=1)
                try:
                    out = executor.submit(_execute_task, tasks[i]).result()
                except BrokenProcessPool:
                    out = None
                finally:
                    executor.shutdown(wait=False, cancel_futures=True)
                if out is None:  # crashed again, alone: it is the culprit
                    if attempts[i] >= self._max_attempts():
                        outcomes[i] = RunOutcome(
                            tasks[i], ok=False, error=dict(_CRASH_ERROR),
                            attempts=attempts[i],
                        )
                    else:
                        attempts[i] += 1
                elif out.ok or attempts[i] >= self._max_attempts():
                    out.attempts = attempts[i]
                    outcomes[i] = out
                else:
                    attempts[i] += 1
            self._deliver(outcomes, on_result)


__all__ = [
    "CRASH_ENV",
    "ERROR_HEADERS",
    "JOBS_ENV",
    "RunOutcome",
    "RunTask",
    "SweepPool",
    "cached_variants",
    "clear_variant_cache",
    "render_errors",
    "resolve_jobs",
    "summarize_failures",
]
