"""Shared command-line entry-point plumbing.

Every console script of the package (``cachier-annotate``, ``repro-obs``,
``repro-verify``, ``cachier-figure6``) wraps its argument-parsing main in
:func:`run_cli` so a :class:`~repro.errors.ReproError` — bad input, a failed
invariant, a corrupt trace, the execution watchdog — exits with status 2 and
a one-line ``<prog>: error: ...`` diagnostic on stderr instead of a Python
traceback.  Programming errors (anything not a ReproError) still traceback:
those are bugs and hiding them helps nobody.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.errors import ReproError

#: exit status for diagnosed tool-level failures (argparse uses 2 as well)
EXIT_ERROR = 2


def package_version() -> str:
    """The installed package version (single source: ``repro.__version__``)."""
    from repro import __version__

    return __version__


def add_version(parser: argparse.ArgumentParser, prog: str) -> None:
    """Give ``parser`` the standard ``--version`` flag.

    Every console script of the package reports the same package version in
    the same shape (``<prog> (repro <version>)``), so scripts and the
    service's status endpoint can correlate artifacts with the code that
    produced them.
    """
    parser.add_argument(
        "--version",
        action="version",
        version=f"{prog} (repro {package_version()})",
    )


def run_cli(
    main: Callable[[Sequence[str] | None], int],
    argv: Sequence[str] | None = None,
    prog: str | None = None,
) -> int:
    """Invoke ``main(argv)``, turning ReproErrors into diagnostics."""
    try:
        return main(argv)
    except ReproError as exc:
        first = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
        name = prog or sys.argv[0].rsplit("/", 1)[-1] or "repro"
        print(f"{name}: error: {first}", file=sys.stderr)
        return EXIT_ERROR
