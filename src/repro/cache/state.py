"""Per-line coherence state.

A node's shared-data cache holds blocks in one of two valid states —
``SHARED`` (read-only copy) or ``EXCLUSIVE`` (writable, possibly dirty) —
matching Dir1SW's per-cache view.  ``INVALID`` is represented by absence from
the cache; the enum member exists only so protocol code can speak about it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LineState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass(slots=True)
class CacheLine:
    """One resident cache block."""

    block: int
    state: LineState
    dirty: bool = False

    def __post_init__(self) -> None:
        if self.state is LineState.INVALID:
            raise ValueError("resident lines cannot be INVALID")
        if self.dirty and self.state is not LineState.EXCLUSIVE:
            raise ValueError("only EXCLUSIVE lines can be dirty")
