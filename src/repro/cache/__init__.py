"""Finite set-associative shared-data cache model."""

from repro.cache.state import CacheLine, LineState
from repro.cache.sa_cache import SetAssociativeCache
from repro.cache.stats import CacheStats

__all__ = ["CacheLine", "LineState", "SetAssociativeCache", "CacheStats"]
