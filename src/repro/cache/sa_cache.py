"""Finite, set-associative, LRU shared-data cache.

The evaluation machine (Section 6) uses a 256 KB, 4-way set-associative cache
with 32-byte blocks per node; this class models exactly that geometry
(any power-of-two geometry is accepted).  Replacement is LRU within a set.

The cache stores *state only* — data values live in the functional backing
store owned by the machine — so lookups and insertions are cheap dict
operations, which matters because every shared reference of every simulated
node passes through here.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.state import CacheLine, LineState
from repro.errors import CacheConfigError
from repro.mem.address import check_power_of_two


class SetAssociativeCache:
    """LRU set-associative cache over block numbers."""

    def __init__(self, size_bytes: int, block_size: int, assoc: int):
        check_power_of_two(size_bytes, "size_bytes")
        check_power_of_two(block_size, "block_size")
        if assoc <= 0:
            raise CacheConfigError(f"associativity must be positive, got {assoc}")
        if size_bytes < block_size * assoc:
            raise CacheConfigError(
                f"cache of {size_bytes}B cannot hold one set of "
                f"{assoc} x {block_size}B blocks"
            )
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.assoc = assoc
        self.num_sets = size_bytes // (block_size * assoc)
        check_power_of_two(self.num_sets, "number of sets")
        # One OrderedDict per set: block -> CacheLine, LRU order = insertion
        # order with move_to_end on touch.
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        #: monotone counter of residency/state changes — the verify property
        #: cache's memo key for whole-cache walks.  Lookups, touches (LRU
        #: reordering) and dirty-bit writes deliberately do NOT bump it:
        #: none of them can change what the barrier invariants observe.
        self.version = 0
        #: per-block change counters (same events, block granularity) — the
        #: property cache's forward-scan key, so one hot block does not
        #: invalidate the memo for every other block this cache holds.
        #: Public so per-access memo keys can read it without a method
        #: call; treat as read-only (absent block = version 0).
        self.block_versions: dict[int, int] = {}

    def block_version(self, block: int) -> int:
        """Monotone counter of residency/state changes for one block."""
        return self.block_versions.get(block, 0)

    def _touch_block(self, block: int) -> None:
        self.block_versions[block] = self.block_versions.get(block, 0) + 1

    # -- geometry ------------------------------------------------------------
    def set_index(self, block: int) -> int:
        return block & (self.num_sets - 1)

    @property
    def capacity_blocks(self) -> int:
        return self.num_sets * self.assoc

    # -- lookups ---------------------------------------------------------------
    def lookup(self, block: int) -> CacheLine | None:
        """Return the resident line for ``block`` (no LRU update)."""
        return self._sets[self.set_index(block)].get(block)

    def touch(self, block: int) -> CacheLine | None:
        """Lookup and mark most-recently-used."""
        cset = self._sets[self.set_index(block)]
        line = cset.get(block)
        if line is not None:
            cset.move_to_end(block)
        return line

    def __contains__(self, block: int) -> bool:
        return block in self._sets[self.set_index(block)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines(self) -> list[CacheLine]:
        """All resident lines (unspecified order)."""
        return [line for cset in self._sets for line in cset.values()]

    # -- mutation ------------------------------------------------------------
    def insert(self, block: int, state: LineState, dirty: bool = False) -> CacheLine | None:
        """Insert ``block``; return the victim line if one was evicted.

        Inserting a block that is already resident replaces its state in
        place (used for upgrades) and evicts nothing.
        """
        cset = self._sets[self.set_index(block)]
        self.version += 1
        self._touch_block(block)
        existing = cset.get(block)
        if existing is not None:
            existing.state = state
            existing.dirty = dirty
            cset.move_to_end(block)
            return None
        victim: CacheLine | None = None
        if len(cset) >= self.assoc:
            _, victim = cset.popitem(last=False)  # least recently used
            self._touch_block(victim.block)
        cset[block] = CacheLine(block=block, state=state, dirty=dirty)
        return victim

    def invalidate(self, block: int) -> CacheLine | None:
        """Remove ``block`` if resident; return the removed line."""
        line = self._sets[self.set_index(block)].pop(block, None)
        if line is not None:
            self.version += 1
            self._touch_block(block)
        return line

    def downgrade(self, block: int) -> bool:
        """EXCLUSIVE -> SHARED; return whether the line was dirty."""
        line = self.lookup(block)
        if line is None or line.state is not LineState.EXCLUSIVE:
            return False
        was_dirty = line.dirty
        line.state = LineState.SHARED
        line.dirty = False
        self.version += 1
        self._touch_block(block)
        return was_dirty

    def snapshot_lines(self) -> list[tuple[int, str, bool]]:
        """Resident lines as ``(block, state, dirty)`` tuples, per-set LRU
        order (least recently used first), for barrier checkpoints."""
        return [
            (line.block, line.state.value, line.dirty)
            for cset in self._sets
            for line in cset.values()
        ]

    def restore_lines(self, lines: list[tuple[int, str, bool]]) -> None:
        """Rebuild residency from :meth:`snapshot_lines` output.  Inserting
        in snapshot order reproduces the per-set LRU order exactly."""
        self.version += 1
        for cset in self._sets:
            for block in cset:
                self._touch_block(block)
            cset.clear()
        for block, state, dirty in lines:
            self.insert(int(block), LineState(state), bool(dirty))

    def flush_all(self) -> list[CacheLine]:
        """Invalidate everything; return the flushed lines (for writebacks).

        Trace mode flushes every node's shared cache at each barrier
        (Section 3.3) so that each epoch's first touches appear as misses.
        """
        from repro.obs import hostprof

        with hostprof.perf_region("cache"):
            flushed = [line for cset in self._sets for line in cset.values()]
            if flushed:
                self.version += 1
            for line in flushed:
                self._touch_block(line.block)
            for cset in self._sets:
                cset.clear()
            return flushed
