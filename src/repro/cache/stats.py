"""Per-cache event counters.

These feed two places: the trace collector (miss records) and the
evaluation harness (Section 6 reports reductions in shared-miss and
write-fault counts and in the time spent servicing them).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_faults: int = 0  # upgrades: write hit on a SHARED line
    evictions: int = 0
    writebacks: int = 0
    checkins: int = 0
    checkouts: int = 0
    prefetches: int = 0
    prefetch_useful: int = 0  # prefetch completed before the demand access
    stall_cycles: int = 0  # cycles spent waiting on the memory system

    def merge(self, other: "CacheStats") -> None:
        """Accumulate ``other`` into ``self`` (for machine-wide totals)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.write_faults

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}
