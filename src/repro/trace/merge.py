"""Training sets: merging traces from multiple executions.

Section 4.5: *"The alternative would have been to use a training set rather
than a single input data set to obtain dynamic program information."*  The
paper measured that a single input sufficed (< 2% difference) and stopped
there; this module implements the alternative so the claim can be probed
directly.

Merging is sound when the executions share the same program structure: the
barrier sequence (and hence the dynamic-epoch numbering) must match.  The
merged trace is the per-epoch **union** of the runs' miss records — a block
any training input touched counts as touched, which biases the annotator
toward covering every observed behaviour (the conservative direction for
Programmer CICO, and harmless for Performance CICO since annotations are
semantics-free).
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.trace.records import Trace


def merge_traces(traces: list[Trace]) -> Trace:
    """Union a training set of traces from structurally identical runs."""
    if not traces:
        raise TraceError("cannot merge an empty training set")
    first = traces[0]
    for other in traces[1:]:
        if other.block_size != first.block_size:
            raise TraceError("training traces disagree on block size")
        if other.num_nodes != first.num_nodes:
            raise TraceError("training traces disagree on node count")
        if _barrier_shape(other) != _barrier_shape(first):
            raise TraceError(
                "training traces disagree on barrier structure: the runs "
                "did not execute the same epochs"
            )
    merged = Trace(
        misses=[],
        barriers=list(first.barriers),
        labels=list(first.labels),
        block_size=first.block_size,
        num_nodes=first.num_nodes,
    )
    seen: set[tuple] = set()
    for trace in traces:
        for rec in trace.misses:
            key = (rec.kind, rec.addr, rec.node, rec.epoch)
            if key not in seen:
                seen.add(key)
                merged.misses.append(rec)
    return merged


def _barrier_shape(trace: Trace) -> list[tuple[int, int]]:
    """(epoch, barrier pc) pairs — the structural fingerprint of a run."""
    return sorted({(rec.epoch, rec.barrier_pc) for rec in trace.barriers})
