"""Trace statistics: the sharing-degree analysis behind Section 6.

The paper explains its Figure 6 spread through each benchmark's *degree of
sharing* ("In Ocean, 88% of loads read shared data... whereas in Barnes
25.5% of the loads are shared data reads").  Those numbers come from traces;
this module computes the trace-visible analogue for ours:

* per-kind miss counts, overall and per epoch,
* per-array miss attribution (which data structure communicates),
* block sharing degree: how many distinct processors touch each block over
  the whole run, and what fraction of misses land on blocks that more than
  one processor touches (actively shared data),
* writer diversity: blocks written by 2+ processors (the race-prone set).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.trace.records import MissKind, Trace


@dataclass
class ArrayStats:
    name: str
    read_misses: int = 0
    write_misses: int = 0
    write_faults: int = 0

    @property
    def total(self) -> int:
        return self.read_misses + self.write_misses + self.write_faults


@dataclass
class TraceSummary:
    num_epochs: int
    num_nodes: int
    miss_counts: Counter = field(default_factory=Counter)
    per_epoch: dict[int, Counter] = field(default_factory=dict)
    per_array: dict[str, ArrayStats] = field(default_factory=dict)
    #: block -> number of distinct processors that missed on it
    block_sharers: dict[int, int] = field(default_factory=dict)
    #: fraction of miss records landing on multi-processor blocks
    shared_miss_fraction: float = 0.0
    #: fraction of blocks written by >= 2 processors
    multi_writer_fraction: float = 0.0

    @property
    def total_misses(self) -> int:
        return sum(self.miss_counts.values())

    def sharing_degree_histogram(self) -> Counter:
        """sharer count -> number of blocks."""
        return Counter(self.block_sharers.values())

    def render(self) -> str:
        from repro.harness.reporting import render_table

        lines = [
            f"trace: {self.total_misses} miss records, "
            f"{self.num_epochs} epochs, {self.num_nodes} processors",
            f"  read misses: {self.miss_counts[MissKind.READ_MISS]}   "
            f"write misses: {self.miss_counts[MissKind.WRITE_MISS]}   "
            f"write faults: {self.miss_counts[MissKind.WRITE_FAULT]}",
            f"  misses on actively-shared blocks: "
            f"{self.shared_miss_fraction:.1%}",
            f"  blocks with multiple writers: "
            f"{self.multi_writer_fraction:.1%}",
        ]
        if self.per_array:
            rows = [
                [s.name, s.read_misses, s.write_misses, s.write_faults,
                 s.total]
                for s in sorted(self.per_array.values(),
                                key=lambda s: -s.total)
            ]
            lines.append(render_table(
                ["array", "rm", "wm", "wf", "total"], rows,
                title="per-array miss attribution",
            ).rstrip())
        return "\n".join(lines) + "\n"


def summarize(trace: Trace) -> TraceSummary:
    summary = TraceSummary(
        num_epochs=trace.num_epochs(), num_nodes=trace.num_nodes
    )
    labels = trace.label_table() if trace.labels else None
    bs = trace.block_size
    block_nodes: dict[int, set[int]] = defaultdict(set)
    block_writers: dict[int, set[int]] = defaultdict(set)
    for rec in trace.misses:
        summary.miss_counts[rec.kind] += 1
        summary.per_epoch.setdefault(rec.epoch, Counter())[rec.kind] += 1
        block = rec.addr // bs
        block_nodes[block].add(rec.node)
        if rec.kind is not MissKind.READ_MISS:
            block_writers[block].add(rec.node)
        if labels is not None:
            found = labels.find(rec.addr)
            name = found.name if found else "<unlabelled>"
            stats = summary.per_array.setdefault(name, ArrayStats(name=name))
            if rec.kind is MissKind.READ_MISS:
                stats.read_misses += 1
            elif rec.kind is MissKind.WRITE_MISS:
                stats.write_misses += 1
            else:
                stats.write_faults += 1
    summary.block_sharers = {b: len(ns) for b, ns in block_nodes.items()}
    if trace.misses:
        shared_blocks = {b for b, ns in block_nodes.items() if len(ns) >= 2}
        on_shared = sum(
            1 for rec in trace.misses if rec.addr // bs in shared_blocks
        )
        summary.shared_miss_fraction = on_shared / len(trace.misses)
    if block_writers:
        multi = sum(1 for ns in block_writers.values() if len(ns) >= 2)
        summary.multi_writer_fraction = multi / len(block_nodes)
    return summary


def main(argv=None) -> int:
    """``python -m repro.trace.stats``: summarize a workload's trace or a
    saved trace file."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--workload", help="trace a built-in workload")
    group.add_argument("--file", help="read a saved trace file")
    args = parser.parse_args(argv)
    if args.file:
        from repro.trace.file_io import read_trace

        trace = read_trace(args.file)
    else:
        from repro.harness.runner import trace_program
        from repro.workloads.base import get_workload

        spec = get_workload(args.workload)
        trace = trace_program(spec.program, spec.config, spec.params_fn)
    print(summarize(trace).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
