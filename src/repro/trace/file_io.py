"""Trace file reader/writer.

A simple line-oriented text format mirroring Figure 3 of the paper, with a
header carrying machine geometry and the labelled-region table:

.. code-block:: text

    # cachier-trace v1
    meta block_size 32
    meta num_nodes 8
    label A 268435456 512 8 C 8 8
    miss read_miss 268435464 17 3 0
    barrier 0 42 1234 0

``miss`` fields: kind, addr, pc, node, epoch.
``barrier`` fields: node, barrier_pc, vt, epoch.
``label`` fields: name, base, nbytes, elem_size, order, shape...
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import TraceError
from repro.trace.records import BarrierRecord, LabelInfo, MissKind, MissRecord, Trace

_MAGIC = "# cachier-trace v1"


def write_trace(trace: Trace, path: str | Path) -> None:
    with open(path, "w", encoding="ascii") as fh:
        _write(trace, fh)


def trace_to_string(trace: Trace) -> str:
    buf = io.StringIO()
    _write(trace, buf)
    return buf.getvalue()


def _write(trace: Trace, fh) -> None:
    fh.write(_MAGIC + "\n")
    fh.write(f"meta block_size {trace.block_size}\n")
    fh.write(f"meta num_nodes {trace.num_nodes}\n")
    for lab in trace.labels:
        shape = " ".join(str(n) for n in lab.shape)
        fh.write(
            f"label {lab.name} {lab.base} {lab.nbytes} {lab.elem_size} "
            f"{lab.order} {shape}\n"
        )
    for rec in trace.misses:
        fh.write(f"miss {rec.kind.value} {rec.addr} {rec.pc} {rec.node} {rec.epoch}\n")
    for rec in trace.barriers:
        fh.write(f"barrier {rec.node} {rec.barrier_pc} {rec.vt} {rec.epoch}\n")


def read_trace(path: str | Path) -> Trace:
    with open(path, "r", encoding="ascii") as fh:
        return _read(fh)


def trace_from_string(text: str) -> Trace:
    return _read(io.StringIO(text))


def _read(fh) -> Trace:
    first = fh.readline().rstrip("\n")
    if first != _MAGIC:
        raise TraceError(f"bad trace header {first!r}")
    trace = Trace()
    for lineno, raw in enumerate(fh, start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        tag = parts[0]
        try:
            if tag == "meta":
                if parts[1] == "block_size":
                    trace.block_size = int(parts[2])
                elif parts[1] == "num_nodes":
                    trace.num_nodes = int(parts[2])
                else:
                    raise TraceError(f"line {lineno}: unknown meta {parts[1]!r}")
            elif tag == "label":
                name, base, nbytes, elem_size, order = parts[1:6]
                shape = tuple(int(x) for x in parts[6:])
                if not shape:
                    raise TraceError(f"line {lineno}: label without shape")
                trace.labels.append(
                    LabelInfo(
                        name=name,
                        base=int(base),
                        nbytes=int(nbytes),
                        elem_size=int(elem_size),
                        order=order,
                        shape=shape,
                    )
                )
            elif tag == "miss":
                kind, addr, pc, node, epoch = parts[1:6]
                trace.misses.append(
                    MissRecord(
                        kind=MissKind(kind),
                        addr=int(addr),
                        pc=int(pc),
                        node=int(node),
                        epoch=int(epoch),
                    )
                )
            elif tag == "barrier":
                node, pc, vt, epoch = parts[1:5]
                trace.barriers.append(
                    BarrierRecord(
                        node=int(node), barrier_pc=int(pc), vt=int(vt), epoch=int(epoch)
                    )
                )
            else:
                raise TraceError(f"line {lineno}: unknown record {tag!r}")
        except (ValueError, IndexError) as exc:
            raise TraceError(f"line {lineno}: malformed record {line!r}") from exc
    return trace
