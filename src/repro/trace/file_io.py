"""Trace file reader/writer.

A simple line-oriented text format mirroring Figure 3 of the paper, with a
header carrying machine geometry and the labelled-region table:

.. code-block:: text

    # cachier-trace v1
    meta block_size 32
    meta num_nodes 8
    label A 268435456 512 8 C 8 8
    miss read_miss 268435464 17 3 0
    barrier 0 42 1234 0

``miss`` fields: kind, addr, pc, node, epoch.
``barrier`` fields: node, barrier_pc, vt, epoch.
``label`` fields: name, base, nbytes, elem_size, order, shape...
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import TraceError
from repro.trace.records import BarrierRecord, LabelInfo, MissKind, MissRecord, Trace

_MAGIC = "# cachier-trace v1"


def write_trace(trace: Trace, path: str | Path) -> None:
    with open(path, "w", encoding="ascii") as fh:
        _write(trace, fh)


def trace_to_string(trace: Trace) -> str:
    buf = io.StringIO()
    _write(trace, buf)
    return buf.getvalue()


def _write(trace: Trace, fh) -> None:
    fh.write(_MAGIC + "\n")
    fh.write(f"meta block_size {trace.block_size}\n")
    fh.write(f"meta num_nodes {trace.num_nodes}\n")
    for lab in trace.labels:
        shape = " ".join(str(n) for n in lab.shape)
        fh.write(
            f"label {lab.name} {lab.base} {lab.nbytes} {lab.elem_size} "
            f"{lab.order} {shape}\n"
        )
    # Stream records in epoch order — each epoch's misses, then its barrier
    # records — so a file truncated by a killed run still ends with whole
    # epochs that salvage_trace can recover.  Misses and barriers are
    # collected in simulation order (epochs are monotone), so this preserves
    # each list's order and read_trace round-trips identically.
    mi = bi = 0
    misses, barriers = trace.misses, trace.barriers
    while bi < len(barriers):
        epoch = barriers[bi].epoch
        while mi < len(misses) and misses[mi].epoch <= epoch:
            rec = misses[mi]
            fh.write(
                f"miss {rec.kind.value} {rec.addr} {rec.pc} {rec.node} {rec.epoch}\n"
            )
            mi += 1
        while bi < len(barriers) and barriers[bi].epoch == epoch:
            rec = barriers[bi]
            fh.write(f"barrier {rec.node} {rec.barrier_pc} {rec.vt} {rec.epoch}\n")
            bi += 1
    for rec in misses[mi:]:
        fh.write(f"miss {rec.kind.value} {rec.addr} {rec.pc} {rec.node} {rec.epoch}\n")


def read_trace(path: str | Path) -> Trace:
    with open(path, "r", encoding="ascii") as fh:
        return _read(fh)


def salvage_trace(path: str | Path) -> tuple[Trace, list[str]]:
    """Best-effort read of a possibly truncated or corrupted trace file.

    Returns ``(trace, warnings)``.  Malformed lines are skipped (collected
    as warnings) instead of raising, and every epoch from the first point of
    damage onwards — a skipped line, or the unterminated final line of a run
    killed mid-write — is dropped: a damaged epoch's miss list cannot be
    known complete, and annotating from a partial epoch silently produces
    *wrong* annotations rather than merely fewer.  An undamaged file
    round-trips identically to :func:`read_trace`.

    Raises :class:`~repro.errors.TraceError` when nothing is salvageable
    (bad header, or no complete epoch survives).
    """
    try:
        with open(path, "r", encoding="ascii", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        raise TraceError(f"{path}: cannot read trace: {exc}") from exc
    lines = text.split("\n")
    damaged = bool(text) and not text.endswith("\n")
    if damaged:
        # the unterminated final line is by definition incomplete
        lines = lines[:-1] + [""]
    if not lines or lines[0].rstrip() != _MAGIC:
        raise TraceError(f"{path}: bad trace header — nothing salvageable")
    warnings: list[str] = []
    trace = Trace()
    skipped = 0
    # Epoch at the first point of damage: everything from it on is suspect.
    damage_epoch: int | None = None
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            _parse_line(trace, line, lineno)
        except TraceError:
            skipped += 1
            damaged = True
            if damage_epoch is None:
                damage_epoch = max(
                    (rec.epoch for rec in trace.barriers), default=-1
                ) + 1
    if skipped:
        warnings.append(f"skipped {skipped} malformed line(s)")
    if not trace.barriers:
        raise TraceError(
            f"{path}: no complete epoch survives — nothing salvageable"
        )
    if damaged:
        drop_from = max(rec.epoch for rec in trace.barriers)
        if damage_epoch is not None:
            drop_from = min(drop_from, damage_epoch)
        kept_b = [rec for rec in trace.barriers if rec.epoch < drop_from]
        kept_m = [rec for rec in trace.misses if rec.epoch < drop_from]
        if not kept_b:
            raise TraceError(
                f"{path}: no complete epoch survives — nothing salvageable"
            )
        dropped = (len(trace.barriers) - len(kept_b),
                   len(trace.misses) - len(kept_m))
        trace.barriers = kept_b
        trace.misses = kept_m
        warnings.append(
            f"file is damaged: dropped the trailing epoch(s) >= {drop_from} "
            f"({dropped[1]} miss / {dropped[0]} barrier records); "
            f"annotating from the {drop_from} complete epoch(s) only"
        )
    return trace, warnings


def trace_from_string(text: str) -> Trace:
    return _read(io.StringIO(text))


def _read(fh) -> Trace:
    first = fh.readline().rstrip("\n")
    if first != _MAGIC:
        raise TraceError(f"bad trace header {first!r}")
    trace = Trace()
    for lineno, raw in enumerate(fh, start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        _parse_line(trace, line, lineno)
    return trace


def _parse_line(trace: Trace, line: str, lineno: int) -> None:
    """Parse one record line into ``trace``; raises TraceError if malformed."""
    parts = line.split()
    tag = parts[0]
    try:
        if tag == "meta":
            if parts[1] == "block_size":
                trace.block_size = int(parts[2])
            elif parts[1] == "num_nodes":
                trace.num_nodes = int(parts[2])
            else:
                raise TraceError(f"line {lineno}: unknown meta {parts[1]!r}")
        elif tag == "label":
            name, base, nbytes, elem_size, order = parts[1:6]
            shape = tuple(int(x) for x in parts[6:])
            if not shape:
                raise TraceError(f"line {lineno}: label without shape")
            trace.labels.append(
                LabelInfo(
                    name=name,
                    base=int(base),
                    nbytes=int(nbytes),
                    elem_size=int(elem_size),
                    order=order,
                    shape=shape,
                )
            )
        elif tag == "miss":
            kind, addr, pc, node, epoch = parts[1:6]
            trace.misses.append(
                MissRecord(
                    kind=MissKind(kind),
                    addr=int(addr),
                    pc=int(pc),
                    node=int(node),
                    epoch=int(epoch),
                )
            )
        elif tag == "barrier":
            node, pc, vt, epoch = parts[1:5]
            trace.barriers.append(
                BarrierRecord(
                    node=int(node), barrier_pc=int(pc), vt=int(vt), epoch=int(epoch)
                )
            )
        else:
            raise TraceError(f"line {lineno}: unknown record {tag!r}")
    except (ValueError, IndexError) as exc:
        raise TraceError(f"line {lineno}: malformed record {line!r}") from exc
