"""Trace collection (paper Section 3.3).

During a trace run, WWT kept per-epoch miss information in a hash table and
dumped it to the trace file at each synchronisation barrier, flushing every
node's shared-data cache so the next epoch's first touches would miss again.
:class:`TraceCollector` reproduces that.  It consumes the machine's event
bus — call :meth:`TraceCollector.subscribe` on the bus of a
``Machine(..., flush_at_barrier=True)`` — and still implements the legacy
:class:`~repro.machine.machine.RunListener` surface for direct use.

As in the paper, at most one record is kept per (node, address, kind) per
epoch — it is a hash table keyed by the access, not an ordered log — and
within an epoch no ordering is preserved.
"""

from __future__ import annotations

from repro.coherence.protocol import AccessKind, AccessResult
from repro.mem.labels import LabelTable
from repro.obs.events import AccessEvent, BarrierEvent, EventBus, EventKind
from repro.trace.records import BarrierRecord, LabelInfo, MissKind, MissRecord, Trace


class TraceCollector:
    def __init__(self, labels: LabelTable | None = None, block_size: int = 32,
                 num_nodes: int = 0):
        self._labels = labels
        self.block_size = block_size
        self.num_nodes = num_nodes
        # Hash table of the current epoch: (node, addr, kind) -> pc of first miss.
        self._epoch_table: dict[tuple[int, int, MissKind], int] = {}
        self._current_epoch = 0
        self._misses: list[MissRecord] = []
        self._barriers: list[BarrierRecord] = []

    @property
    def labels(self) -> LabelTable | None:
        """The labelled-region table addresses are joined against — the same
        table an attribution profiler on this bus should be given, so the
        two agree on structure names."""
        return self._labels

    # --------------------------------------------------------------- bus API
    def subscribe(self, bus: EventBus) -> list[int]:
        """Attach to a machine's event bus; returns the subscription tokens."""
        return [
            bus.subscribe((EventKind.ACCESS,), self._on_access_event),
            bus.subscribe((EventKind.BARRIER,), self._on_barrier_event),
        ]

    def _on_access_event(self, event: AccessEvent) -> None:
        if event.result.kind is not AccessKind.HIT:
            self.on_access(event.node, event.epoch, event.addr, event.pc,
                           event.result)

    def _on_barrier_event(self, event: BarrierEvent) -> None:
        self.on_barrier(event.epoch, event.vt, event.node_pcs)

    # ---------------------------------------------------------- listener API
    def on_access(
        self, node: int, epoch: int, addr: int, pc: int, result: AccessResult
    ) -> None:
        kind = MissKind.from_access(result.kind)
        self._current_epoch = epoch
        self._epoch_table.setdefault((node, addr, kind), pc)

    def on_barrier(self, epoch: int, vt: int, node_pcs: dict[int, int]) -> None:
        self._dump_epoch(epoch)
        for node, pc in sorted(node_pcs.items()):
            self._barriers.append(
                BarrierRecord(node=node, barrier_pc=pc, vt=vt, epoch=epoch)
            )
        self._current_epoch = epoch + 1

    # ------------------------------------------------------------- finishing
    def _dump_epoch(self, epoch: int) -> None:
        for (node, addr, kind), pc in self._epoch_table.items():
            self._misses.append(
                MissRecord(kind=kind, addr=addr, pc=pc, node=node, epoch=epoch)
            )
        self._epoch_table.clear()

    def finish(self) -> Trace:
        """Flush the final (unterminated) epoch and build the Trace."""
        self._dump_epoch(self._current_epoch)
        labels = (
            [LabelInfo.from_label(lab) for lab in self._labels]
            if self._labels is not None
            else []
        )
        return Trace(
            misses=list(self._misses),
            barriers=list(self._barriers),
            labels=labels,
            block_size=self.block_size,
            num_nodes=self.num_nodes,
        )
