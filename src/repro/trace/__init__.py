"""Execution-trace substrate (paper Section 3.3, Figure 3)."""

from repro.trace.records import BarrierRecord, MissKind, MissRecord, Trace
from repro.trace.collector import TraceCollector
from repro.trace.file_io import read_trace, write_trace
from repro.trace.merge import merge_traces
from repro.trace.stats import summarize

__all__ = [
    "BarrierRecord",
    "MissKind",
    "MissRecord",
    "Trace",
    "TraceCollector",
    "read_trace",
    "write_trace",
    "merge_traces",
    "summarize",
]
