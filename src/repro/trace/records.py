"""Trace record types (paper Figure 3).

The trace file contains, per epoch, one record per shared-data cache miss —
its type (shared read miss / shared write miss / shared write fault), the
address, the program counter, the node — plus one barrier record per node per
epoch boundary carrying the barrier PC and the barrier virtual time.  Within
an epoch records carry **no ordering**; epochs are ordered by barrier VT.

The trace also carries the labelling information (Section 4.3's labelled
regions) so the annotator can map raw addresses back to program data
structures without re-running the program.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.coherence.protocol import AccessKind
from repro.errors import TraceError
from repro.mem.labels import ArrayLabel, LabelTable
from repro.mem.layout import Region


class MissKind(enum.Enum):
    READ_MISS = "read_miss"
    WRITE_MISS = "write_miss"
    WRITE_FAULT = "write_fault"

    @classmethod
    def from_access(cls, kind: AccessKind) -> "MissKind":
        try:
            return _FROM_ACCESS[kind]
        except KeyError:
            raise TraceError(f"access kind {kind} is not a miss") from None


_FROM_ACCESS = {
    AccessKind.READ_MISS: MissKind.READ_MISS,
    AccessKind.WRITE_MISS: MissKind.WRITE_MISS,
    AccessKind.WRITE_FAULT: MissKind.WRITE_FAULT,
}


@dataclass(frozen=True, slots=True)
class MissRecord:
    kind: MissKind
    addr: int
    pc: int
    node: int
    epoch: int


@dataclass(frozen=True, slots=True)
class BarrierRecord:
    node: int
    barrier_pc: int
    vt: int
    epoch: int  # the epoch this barrier *closed*


@dataclass(slots=True)
class LabelInfo:
    """Serializable description of one labelled region."""

    name: str
    base: int
    nbytes: int
    elem_size: int
    order: str
    shape: tuple[int, ...]

    @classmethod
    def from_label(cls, label: ArrayLabel) -> "LabelInfo":
        return cls(
            name=label.name,
            base=label.region.base,
            nbytes=label.region.nbytes,
            elem_size=label.elem_size,
            order=label.order,
            shape=label.shape,
        )

    def to_label(self) -> ArrayLabel:
        region = Region(name=self.name, base=self.base, nbytes=self.nbytes)
        return ArrayLabel(
            region=region, shape=self.shape, elem_size=self.elem_size, order=self.order
        )


@dataclass
class Trace:
    """A complete program trace: misses + barriers + labels."""

    misses: list[MissRecord] = field(default_factory=list)
    barriers: list[BarrierRecord] = field(default_factory=list)
    labels: list[LabelInfo] = field(default_factory=list)
    block_size: int = 32
    num_nodes: int = 0

    def num_epochs(self) -> int:
        """Epochs are numbered from 0; the final epoch may lack a barrier."""
        last = -1
        for rec in self.misses:
            last = max(last, rec.epoch)
        for rec in self.barriers:
            last = max(last, rec.epoch)
        return last + 1

    def misses_in(self, epoch: int) -> list[MissRecord]:
        return [rec for rec in self.misses if rec.epoch == epoch]

    def barrier_pc_closing(self, epoch: int) -> int | None:
        """Barrier PC that closed ``epoch`` (same for all nodes in SPMD)."""
        for rec in self.barriers:
            if rec.epoch == epoch:
                return rec.barrier_pc
        return None

    def label_table(self) -> LabelTable:
        table = LabelTable()
        for info in self.labels:
            table.add(info.to_label())
        return table

    def static_epoch_key(self, epoch: int) -> tuple[int, int]:
        """(opening barrier pc, closing barrier pc) identifying the *static*
        epoch; -1 stands for program start / program end.  Dynamic epochs with
        equal keys are re-executions of the same program region."""
        opening = self.barrier_pc_closing(epoch - 1) if epoch > 0 else -1
        closing = self.barrier_pc_closing(epoch)
        return (opening if opening is not None else -1,
                closing if closing is not None else -1)
